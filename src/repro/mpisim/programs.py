"""Ready-made simulated MPI programs.

Small, realistic communication patterns used by the examples and tests:
a 1-D halo-exchange stencil, a ring pipeline and an imbalanced
master-worker loop.  Each is a factory returning a program callable
suitable for :meth:`repro.mpisim.simulator.MPISimulator.run`.
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.machine.perfmodel import WorkloadPoint
from repro.mpisim.simulator import MPIRankAPI

__all__ = ["stencil_1d", "ring_exchange", "imbalanced_master_worker"]

Program = Callable[[int, MPIRankAPI], Generator]


def stencil_1d(
    *,
    iterations: int = 8,
    cells_per_rank: float = 2e5,
    halo_bytes: int = 8192,
    working_set_bytes: float = 256 * 1024,
) -> Program:
    """A 1-D domain-decomposed stencil with halo exchanges.

    Every iteration: exchange halos with both neighbours (periodic),
    compute the interior, then allreduce a residual.  Two behavioural
    regions per iteration: the big interior update and the small
    residual reduction preamble.
    """
    update = WorkloadPoint(
        work_units=cells_per_rank,
        instructions_per_unit=45.0,
        memory_accesses_per_unit=1.0,
        working_set_bytes=working_set_bytes,
    )
    residual = WorkloadPoint(
        work_units=cells_per_rank * 0.15,
        instructions_per_unit=30.0,
        memory_accesses_per_unit=0.4,
        working_set_bytes=working_set_bytes / 4,
    )

    def program(rank: int, mpi: MPIRankAPI):
        left = (rank - 1) % mpi.nranks
        right = (rank + 1) % mpi.nranks
        for _ in range(iterations):
            if mpi.nranks > 1:
                yield mpi.sendrecv(dest=right, src=left, nbytes=halo_bytes)
                yield mpi.sendrecv(dest=left, src=right, nbytes=halo_bytes)
            yield mpi.compute("stencil_update", update)
            yield mpi.compute("residual", residual)
            yield mpi.allreduce(8)

    return program


def ring_exchange(
    *, iterations: int = 6, nbytes: int = 65536, work_units: float = 1e5
) -> Program:
    """A pipeline ring: compute, pass a block to the right neighbour."""
    point = WorkloadPoint(
        work_units=work_units,
        instructions_per_unit=50.0,
        memory_accesses_per_unit=0.6,
        working_set_bytes=128 * 1024,
    )

    def program(rank: int, mpi: MPIRankAPI):
        right = (rank + 1) % mpi.nranks
        left = (rank - 1) % mpi.nranks
        for _ in range(iterations):
            yield mpi.compute("ring_work", point)
            if mpi.nranks > 1:
                yield mpi.send(right, nbytes)
                yield mpi.recv(left)

    return program


def imbalanced_master_worker(
    *, rounds: int = 6, base_work: float = 8e4, master_factor: float = 0.3
) -> Program:
    """Master-worker with uneven work: two behavioural regions.

    The master (rank 0) does light coordination work and collects one
    message per worker per round; workers compute heavy chunks whose
    size grows with the rank (a deliberate gradient, so the worker
    region stretches vertically in the performance space).
    """
    def program(rank: int, mpi: MPIRankAPI):
        if rank == 0:
            coordinate = WorkloadPoint(
                work_units=base_work * master_factor,
                instructions_per_unit=40.0,
                memory_accesses_per_unit=0.3,
                working_set_bytes=32 * 1024,
            )
            for _ in range(rounds):
                yield mpi.compute("coordinate", coordinate)
                for worker in range(1, mpi.nranks):
                    yield mpi.recv(worker)
                yield mpi.barrier()
        else:
            gradient = 1.0 + 0.4 * (rank - 1) / max(mpi.nranks - 2, 1)
            chunk = WorkloadPoint(
                work_units=base_work * gradient,
                instructions_per_unit=55.0,
                memory_accesses_per_unit=0.8,
                working_set_bytes=192 * 1024,
            )
            for _ in range(rounds):
                yield mpi.compute("work_chunk", chunk)
                yield mpi.send(0, 4096)
                yield mpi.barrier()

    return program
