"""Discrete-event simulation of MPI programs -> burst traces.

The declarative :mod:`repro.apps` models cover the paper's workloads,
but real tracing tools intercept *programs*: arbitrary computation
interleaved with MPI calls.  This subpackage provides that substrate —
a deterministic discrete-event simulator where each rank runs a Python
generator yielding compute and communication operations:

>>> from repro.mpisim import MPISimulator
>>> from repro.machine.perfmodel import WorkloadPoint
>>> point = WorkloadPoint(1e5, 50.0, 0.5, 32 * 1024)
>>> def program(rank, mpi):
...     for _ in range(3):
...         yield mpi.compute("solve", point)
...         yield mpi.allreduce(8)
>>> trace = MPISimulator(nranks=4).run(program)
>>> trace.n_bursts
12

Compute operations advance the issuing rank's clock through the machine
performance model and record CPU bursts; communication operations
synchronise clocks through a latency/bandwidth network model (eager
buffered sends, rendezvous-free).  The generated
:class:`~repro.trace.trace.Trace` feeds the same clustering/tracking
pipeline as everything else.
"""

from __future__ import annotations

from repro.mpisim.network import NetworkModel
from repro.mpisim.ops import AllReduce, Barrier, Compute, Recv, Send, SendRecv
from repro.mpisim.programs import imbalanced_master_worker, ring_exchange, stencil_1d
from repro.mpisim.simulator import DeadlockError, MPIRankAPI, MPISimulator

__all__ = [
    "MPISimulator",
    "MPIRankAPI",
    "DeadlockError",
    "NetworkModel",
    "Compute",
    "Barrier",
    "AllReduce",
    "Send",
    "Recv",
    "SendRecv",
    "stencil_1d",
    "ring_exchange",
    "imbalanced_master_worker",
]
