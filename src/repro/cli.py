"""Command-line interface: ``repro-track`` / ``python -m repro``.

Sub-commands
------------
``simulate``
    Generate a synthetic application trace and save it.
``track``
    Cluster + track a set of saved traces; print the relations, trends
    and optionally render SVGs.
``watch``
    Slice one trace into time windows and track them incrementally,
    streaming an update line as each window's frame closes; with
    ``--cache-dir`` a restarted watch resumes from the last completed
    window (see ``docs/streaming.md``).  ``--alerts`` attaches the
    online monitor — per-region one-step-ahead forecasts with typed
    divergence/regression/death/split/plateau alerts on stderr and,
    with ``--alerts-jsonl PATH``, as JSON lines (see
    ``docs/observability.md``).
``study``
    Run one of the paper's canned case studies by name.
``table2``
    Run all ten case studies and print the Table 2 reproduction.
``cache``
    Inspect (``info``) or empty (``clear``) the on-disk pipeline cache.
``info``
    List registered applications, machines and case studies.

``track``, ``study`` and ``table2`` accept ``--jobs/-j`` (parallel
pipeline stages), ``--cache-dir`` (incremental trace/frame cache),
``--strict/--no-strict`` (fail fast vs quarantine-and-continue; see
``docs/robustness.md``) and ``--report PATH`` (self-contained HTML/JSON
run report; see ``docs/reports.md``).  ``report`` honours
``--no-strict`` too and can write the HTML report via ``--html``.
``bench-compare OLD NEW`` diffs two ``BENCH_RESULTS.json`` files and
exits 1 on perf regressions beyond the noise threshold.

Exit codes: 0 on success, 2 when the pipeline fails outright (a
:class:`~repro.errors.ReproError`), 3 when ``--no-strict`` completed
with quarantined items (a partial result), 4 when a ``watch --alerts``
run completed cleanly but raised alerts (quarantine wins over alerts
when both apply); ``bench-compare`` exits 1 on regression, 2 on
unreadable input.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro._version import __version__

__all__ = ["main", "build_parser"]


def _parse_scenario(pairs: list[str]) -> dict[str, object]:
    """Parse ``key=value`` scenario arguments with light type coercion."""
    scenario: dict[str, object] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"error: scenario argument {pair!r} is not key=value")
        key, raw = pair.split("=", 1)
        value: object
        try:
            value = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                value = raw
        scenario[key] = value
    return scenario


#: ``--profile`` with no PATH: print the stage tree, write no file.
_PROFILE_STDERR = ""


def _add_perf_flags(parser: argparse.ArgumentParser) -> None:
    """``--jobs/-j`` and ``--cache-dir``: the parallel/caching knobs."""
    parser.add_argument(
        "-j", "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the parallel pipeline stages "
        "(default: REPRO_JOBS or 1; 0 = one per CPU); results are "
        "identical to a serial run",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="content-addressed cache of simulated traces and frame "
        "labellings (default: REPRO_CACHE; unset = no caching)",
    )


def _add_strict_flag(parser: argparse.ArgumentParser) -> None:
    """``--strict/--no-strict``: fail fast vs quarantine-and-continue."""
    parser.add_argument(
        "--strict",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="--strict (default) aborts on the first malformed input or "
        "failing stage; --no-strict drops repairably bad bursts, "
        "quarantines failing items and continues with the survivors "
        "(exit code 3 when anything was quarantined)",
    )


def _add_report_flag(parser: argparse.ArgumentParser) -> None:
    """``--report PATH``: write the self-contained run report."""
    parser.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="write a self-contained run report to PATH — HTML with "
        "embedded plots, attribution tables and the quarantine summary, "
        "or the machine-readable JSON payload when PATH ends in .json "
        "(see docs/reports.md)",
    )


def _add_client_url_flag(parser: argparse.ArgumentParser) -> None:
    """``--url URL``: which job server a client subcommand talks to."""
    parser.add_argument(
        "--url",
        default=None,
        metavar="URL",
        help="job server base URL, e.g. http://127.0.0.1:8765 "
        "(default: REPRO_SERVE_URL)",
    )


def _resolve_cache(args: argparse.Namespace):
    from repro.parallel.cache import resolve_cache

    return resolve_cache(getattr(args, "cache_dir", None))


def _add_profile_flag(parser: argparse.ArgumentParser) -> None:
    """``--profile [PATH]``: stage-time tree to stderr, Chrome trace to PATH."""
    parser.add_argument(
        "--profile",
        nargs="?",
        const=_PROFILE_STDERR,
        default=None,
        metavar="PATH",
        help="enable observability; print a stage-time breakdown and "
        "evaluator decision counts to stderr, and write a Chrome-trace "
        "JSON (chrome://tracing) to PATH when given ('{run_id}' in PATH "
        "expands to this run's id so concurrent sessions never collide)",
    )


def _expand_run_id(path: str) -> str:
    """Expand a literal ``{run_id}`` placeholder in an artifact path."""
    if "{run_id}" in path:
        from repro import obs

        return path.replace("{run_id}", obs.run_id())
    return path


def _verbosity_parent(default: object) -> argparse.ArgumentParser:
    """Parent parser carrying ``-v``/``-q`` and ``--ledger-dir``.

    Subparsers get ``argparse.SUPPRESS`` defaults: a subparser parses
    into a fresh namespace and copies every attribute over, so a plain
    ``default=0`` would clobber a ``-v`` given before the subcommand.
    """
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "-v", "--verbose", action="count", default=default,
        help="increase log verbosity (-v: info, -vv: debug)",
    )
    parent.add_argument(
        "-q", "--quiet", action="count", default=default,
        help="decrease log verbosity (errors only)",
    )
    parent.add_argument(
        "--ledger-dir",
        default=None if default == 0 else default,
        metavar="DIR",
        help="append schema-versioned run records (start/end, exit code, "
        "quality and alert totals, wall/RSS) to this ledger directory "
        "(default: REPRO_LEDGER; unset = no ledger)",
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser."""
    common = _verbosity_parent(argparse.SUPPRESS)
    parser = argparse.ArgumentParser(
        prog="repro-track",
        description="Object tracking techniques applied to performance analysis "
        "(SC 2013 reproduction)",
        parents=[_verbosity_parent(0)],
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_parser(name: str, **kwargs) -> argparse.ArgumentParser:
        return sub.add_parser(name, parents=[common], **kwargs)

    sim = add_parser("simulate", help="generate a synthetic application trace")
    sim.add_argument("app", help="registered application name (see `info`)")
    sim.add_argument("scenario", nargs="*", help="scenario parameters key=value")
    sim.add_argument("-o", "--output", required=True, help="trace file (.json/.csv[.gz])")
    sim.add_argument("--seed", type=int, default=0)

    track = add_parser("track", help="track objects across saved traces")
    track.add_argument("traces", nargs="+", help="trace files, in sequence order")
    track.add_argument("--x-metric", default="ipc")
    track.add_argument("--y-metric", default="instructions")
    track.add_argument("--eps", type=float, default=0.03)
    track.add_argument("--min-pts", type=int, default=None)
    track.add_argument("--relevance", type=float, default=0.95)
    track.add_argument("--log-y", action="store_true")
    track.add_argument("--trend-metric", action="append", default=None,
                       help="metric(s) to report trends for (default: ipc)")
    track.add_argument("--render", metavar="DIR", default=None,
                       help="write SVG renderings into DIR")
    _add_profile_flag(track)
    _add_perf_flags(track)
    _add_strict_flag(track)
    _add_report_flag(track)

    watch = add_parser(
        "watch",
        help="stream one trace through time windows, tracking incrementally",
    )
    watch.add_argument("trace", help="trace file to window and stream")
    watch_mode = watch.add_mutually_exclusive_group(required=True)
    watch_mode.add_argument(
        "--windows", type=int, default=None, metavar="N",
        help="split the trace's time span into N equal windows",
    )
    watch_mode.add_argument(
        "--window-ns", type=float, default=None, metavar="NS",
        help="fixed window duration in nanoseconds (last window may be "
        "shorter)",
    )
    watch.add_argument("--x-metric", default="ipc")
    watch.add_argument("--y-metric", default="instructions")
    watch.add_argument("--eps", type=float, default=0.03)
    watch.add_argument("--min-pts", type=int, default=None)
    watch.add_argument("--relevance", type=float, default=0.95)
    watch.add_argument("--log-y", action="store_true")
    watch.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="pipeline cache enabling per-window frame reuse and "
        "checkpointed resume (default: REPRO_CACHE; unset = no resume)",
    )
    watch.add_argument(
        "--shards", type=int, default=1, metavar="S",
        help="partition each window's bursts into S rank-shards and "
        "cluster them with the cluster-then-merge engine (labels are "
        "bit-identical to --shards 1; a throughput knob for burst-scale "
        "windows)",
    )
    watch.add_argument(
        "-j", "--jobs", type=int, default=None, metavar="N",
        help="prefetch window cluster labels with N worker processes "
        "before the serial tracking pass (default: REPRO_JOBS or serial)",
    )
    watch.add_argument(
        "--max-live-windows", type=int, default=None, metavar="K",
        help="hold at most K full window frames in memory; older windows "
        "are condensed to per-cluster digests (regions/coverage/relations "
        "unchanged, trend means up to float summation order)",
    )
    watch.add_argument(
        "--alerts", action="store_true",
        help="monitor every tracked region online: forecast each "
        "window's metrics one step ahead and raise typed alerts on "
        "divergence, IPC regression, region death/split and stalled "
        "trends (exit code 4 when an otherwise-clean run alerted)",
    )
    watch.add_argument(
        "--alert-threshold", type=float, default=0.15, metavar="FRACTION",
        help="relative forecast deviation tolerated before a divergence "
        "alert fires (default: 0.15; the residual-scaled sigma band "
        "still applies)",
    )
    watch.add_argument(
        "--alerts-jsonl", default=None, metavar="PATH",
        help="write every alert record as JSON lines to PATH (implies "
        "--alerts; '{run_id}' in PATH expands to this run's id)",
    )
    watch.add_argument(
        "--serve", type=int, default=None, metavar="PORT",
        help="serve live telemetry over HTTP while the watch runs: "
        "/metrics (Prometheus text exposition of the metrics registry "
        "and resource-sampler gauges) and /healthz (window progress, "
        "last-window lag, alert totals); 0 picks a free port; implies "
        "observability and the resource sampler",
    )
    watch.add_argument(
        "--serve-grace", type=float, default=0.0, metavar="SECONDS",
        help="keep /metrics and /healthz up for SECONDS after the run "
        "completes so external scrapers catch the final state "
        "(default: 0)",
    )
    _add_profile_flag(watch)
    _add_strict_flag(watch)
    _add_report_flag(watch)

    study = add_parser("study", help="run a canned paper case study")
    study.add_argument("name", help="case study name (see `info`)")
    study.add_argument("--seed", type=int, default=0)
    study.add_argument("--render", metavar="DIR", default=None)
    _add_profile_flag(study)
    _add_perf_flags(study)
    _add_strict_flag(study)
    _add_report_flag(study)

    table2 = add_parser("table2", help="run all case studies; print Table 2")
    _add_profile_flag(table2)
    _add_perf_flags(table2)
    _add_strict_flag(table2)
    _add_report_flag(table2)

    cache = add_parser(
        "cache", help="inspect or clear the on-disk pipeline cache"
    )
    cache.add_argument("action", choices=("info", "clear"),
                       help="'info' prints entry counts and sizes; "
                       "'clear' deletes every entry")
    cache.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="cache directory (default: REPRO_CACHE)")

    report = add_parser(
        "report", help="who-is-who report with evaluator evidence"
    )
    report.add_argument("traces", nargs="+", help="trace files, in sequence order")
    report.add_argument("--no-evidence", action="store_true",
                        help="omit the per-relation evaluator evidence")
    report.add_argument("--relevance", type=float, default=0.95)
    report.add_argument("--html", default=None, metavar="PATH",
                        help="also write the self-contained HTML run "
                        "report to PATH")
    _add_strict_flag(report)

    animate = add_parser(
        "animate", help="write an animated HTML view of the tracked frames"
    )
    animate.add_argument("traces", nargs="+", help="trace files, in sequence order")
    animate.add_argument("-o", "--output", required=True, help="output .html file")
    animate.add_argument("--interval", type=int, default=900,
                         help="frame interval in milliseconds")
    animate.add_argument("--relevance", type=float, default=0.95)

    bench = add_parser(
        "bench-compare",
        help="compare two BENCH_RESULTS.json files for perf regressions",
    )
    bench.add_argument("old", help="baseline BENCH_RESULTS.json")
    bench.add_argument("new", help="candidate BENCH_RESULTS.json")
    bench.add_argument(
        "--threshold", type=float, default=0.25, metavar="FRACTION",
        help="relative wall-time growth tolerated before a bench counts "
        "as regressed (default: 0.25 = 25%%)",
    )
    bench.add_argument(
        "--min-seconds", type=float, default=0.005, metavar="S",
        help="absolute growth floor — smaller deltas are noise "
        "(default: 0.005)",
    )
    bench.add_argument(
        "--rss-threshold", type=float, default=None, metavar="FRACTION",
        help="also fail when a bench's RSS peak grew by more than this "
        "fraction (off by default; only meaningful when OLD and NEW ran "
        "the same bench selection in the same order)",
    )
    bench.add_argument(
        "--min-rss-kib", type=int, default=10_240, metavar="KIB",
        help="absolute RSS growth floor for --rss-threshold "
        "(default: 10240 = 10 MiB)",
    )

    obs_cmd = add_parser(
        "obs",
        help="query the run ledger or serve the live telemetry endpoints",
    )
    obs_cmd.add_argument(
        "action", choices=("runs", "tail", "summary", "export", "serve"),
        help="'runs' lists recorded runs; 'tail' prints the newest ledger "
        "events; 'summary' drills into one run; 'export' writes a "
        "bench-compare-able repro.bench/1 payload of per-entry wall/RSS; "
        "'serve' exposes /metrics and /healthz standalone",
    )
    obs_cmd.add_argument(
        "target", nargs="?", default=None, metavar="RUN_ID",
        help="run id (or unique prefix) for 'summary' "
        "(default: the most recent completed run)",
    )
    obs_cmd.add_argument(
        "-n", "--lines", type=int, default=20, metavar="N",
        help="number of events for 'tail' (default: 20)",
    )
    obs_cmd.add_argument(
        "-o", "--output", default=None, metavar="PATH",
        help="output file for 'export' (default: stdout)",
    )
    obs_cmd.add_argument(
        "--port", type=int, default=9464, metavar="PORT",
        help="port for 'serve' (default: 9464; 0 picks a free port)",
    )

    tune = add_parser(
        "tune", help="suggest a DBSCAN eps for a trace (plateau search)"
    )
    tune.add_argument("trace", help="trace file to tune against")
    tune.add_argument("--x-metric", default="ipc")
    tune.add_argument("--y-metric", default="instructions")
    tune.add_argument("--log-y", action="store_true")

    serve = add_parser(
        "serve",
        help="run the multi-tenant tracking job server "
        "(POST /jobs + /metrics + /healthz)",
    )
    serve.add_argument(
        "--root", required=True, metavar="DIR",
        help="server state root: job journal plus per-tenant "
        "cache/ledger/results trees (survives restarts; interrupted "
        "jobs are re-queued from the journal)",
    )
    serve.add_argument(
        "--port", type=int, default=8765, metavar="PORT",
        help="port for the job API and telemetry endpoints "
        "(default: 8765; 0 picks a free port)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", metavar="HOST",
        help="bind address (default: 127.0.0.1)",
    )
    serve.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="dispatcher threads, one isolated child process per "
        "running job (default: 2)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=32, metavar="N",
        help="waiting-job capacity; submissions beyond it get HTTP 429 "
        "reason=queue_full (default: 32)",
    )
    serve.add_argument(
        "--tenant-cap", type=int, default=4, metavar="N",
        help="active (waiting+running) jobs allowed per tenant; beyond "
        "it HTTP 429 reason=tenant_cap (default: 4)",
    )
    serve.add_argument(
        "--job-timeout", type=float, default=300.0, metavar="S",
        help="kill a job's worker after S seconds and mark the job "
        "failed (default: 300)",
    )

    submit = add_parser("submit", help="submit a job to a running job server")
    submit.add_argument(
        "spec", help="job spec JSON file ('-' reads stdin); see "
        "docs/service.md for the schema",
    )
    _add_client_url_flag(submit)
    submit.add_argument(
        "--tenant", default="default", metavar="NAME",
        help="tenant namespace to run under (default: 'default')",
    )
    submit.add_argument(
        "--wait", action="store_true",
        help="poll until the job is terminal; exit 0 only if it is done",
    )
    submit.add_argument(
        "--timeout", type=float, default=300.0, metavar="S",
        help="give up waiting after S seconds (default: 300)",
    )

    status = add_parser(
        "status", help="query job status (or a tenant's jobs) on a server"
    )
    status.add_argument(
        "job_id", nargs="?", default=None,
        help="job id; omit with --tenant to list that tenant's jobs",
    )
    _add_client_url_flag(status)
    status.add_argument(
        "--tenant", default=None, metavar="NAME",
        help="list all jobs of this tenant instead of one job",
    )

    result = add_parser(
        "result", help="fetch a done job's result payload or HTML report"
    )
    result.add_argument("job_id", help="job id")
    _add_client_url_flag(result)
    result.add_argument(
        "-o", "--output", default=None, metavar="PATH",
        help="write the artefact to PATH (default: stdout)",
    )
    result.add_argument(
        "--report", action="store_true",
        help="fetch the self-contained HTML report instead of the "
        "canonical result.json",
    )

    add_parser("info", help="list applications, machines and case studies")
    return parser


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.apps.registry import build_app
    from repro.trace.io import save_trace

    model = build_app(args.app, **_parse_scenario(args.scenario))
    trace = model.run(seed=args.seed)
    path = save_trace(trace, args.output)
    print(f"wrote {trace.n_bursts} bursts of {trace.label()} to {path}")
    return 0


def _print_result(result, trend_metrics: list[str]) -> None:
    from repro.analysis.insights import diagnose, format_insights
    from repro.analysis.report import format_table
    from repro.tracking.trends import compute_trends

    print(f"frames: {result.n_frames}   tracked regions: "
          f"{len(result.tracked_regions)}   coverage: {result.coverage}%")
    for region in result.regions:
        print(f"  {region!r}")
    for metric in trend_metrics:
        series = compute_trends(result, metric)
        rows = [
            [f"Region {s.region_id}"]
            + [("-" if not np.isfinite(v) else f"{v:.4g}") for v in s.values]
            for s in series
        ]
        labels = [frame.label for frame in result.frames]
        print()
        print(format_table(["", *labels], rows, title=f"{metric} evolution"))
    print()
    print(format_insights(diagnose(result)))


def _render(result, out_dir: str) -> None:
    from repro.tracking.relabel import relabel_frames
    from repro.tracking.trends import compute_trends
    from repro.viz.frames_plot import render_sequence_svg
    from repro.viz.trend_plot import render_trends_svg

    out = Path(out_dir)
    relabeled = relabel_frames(result)
    seq_path = render_sequence_svg(relabeled, out / "frames.svg")
    trend_path = render_trends_svg(
        compute_trends(result, "ipc"), out / "trend_ipc.svg", title="IPC evolution"
    )
    print(f"rendered {seq_path} and {trend_path}")


def _load_traces(paths: list[str], *, strict: bool):
    """Load every trace; under non-strict, quarantine unloadable files."""
    from repro.errors import ReproError
    from repro.robust.partial import ItemFailure
    from repro.trace.io import load_trace

    failures = []
    traces = []
    for path in paths:
        if strict:
            traces.append(load_trace(path))
            continue
        try:
            traces.append(load_trace(path, strict=False))
        except ReproError as exc:
            failure = ItemFailure.from_exception(path, "load", exc)
            failures.append(failure)
            print(f"warning: quarantined {failure}", file=sys.stderr)
    return traces, failures


def _report_partial(partial, extra_failures=()):
    """Print the quarantine summary; return (exit code, all failures)."""
    from repro.robust.partial import PartialResult

    combined = PartialResult(
        value=partial.value,
        failures=tuple(extra_failures) + partial.failures,
    )
    if not combined.ok:
        print(combined.summary(), file=sys.stderr)
    return combined.exit_code, combined.failures


def _write_report(
    args: argparse.Namespace, runs, *, include_viz=True, stream=None
) -> None:
    """Write the ``--report`` artefact when the flag was given."""
    if not getattr(args, "report", None):
        return
    from repro.obs.report import write_report

    path = write_report(
        args.report, runs, include_viz=include_viz, stream=stream
    )
    print(f"wrote run report to {path}", file=sys.stderr)


def _cmd_track(args: argparse.Namespace) -> int:
    from repro.api import quick_track
    from repro.clustering.frames import FrameSettings

    traces, load_failures = _load_traces(args.traces, strict=args.strict)
    settings = FrameSettings(
        x_metric=args.x_metric,
        y_metric=args.y_metric,
        eps=args.eps,
        min_pts=args.min_pts,
        relevance=args.relevance,
        log_y=args.log_y,
    )
    result = quick_track(
        traces,
        settings=settings,
        jobs=args.jobs,
        cache=_resolve_cache(args),
        strict=args.strict,
    )
    code = 0
    failures = ()
    if not args.strict:
        code, failures = _report_partial(result, load_failures)
        result = result.value
    _print_result(result, args.trend_metric or ["ipc"])
    if args.render:
        _render(result, args.render)
    _write_report(args, [("tracking run", result, failures)])
    return code


def _cmd_watch(args: argparse.Namespace) -> int:
    from repro.clustering.frames import FrameSettings
    from repro.obs import runtime as obsruntime
    from repro.obs.alerts import EXIT_ALERTS, AlertConfig, format_alert
    from repro.stream import WINDOW_KEY, WatchTelemetry, track_windows
    from repro.trace.io import load_trace

    trace = load_trace(args.trace, strict=args.strict)
    settings = FrameSettings(
        x_metric=args.x_metric,
        y_metric=args.y_metric,
        eps=args.eps,
        min_pts=args.min_pts,
        relevance=args.relevance,
        log_y=args.log_y,
    )
    alert_config = None
    if args.alerts or args.alerts_jsonl:
        alert_config = AlertConfig(threshold=args.alert_threshold)
    telemetry = WatchTelemetry(alerts=alert_config)

    server = None
    if args.serve is not None:
        from repro.obs.serve import start_metrics_server

        try:
            server = start_metrics_server(
                args.serve,
                health_source=telemetry.health,
                sampler=obsruntime.active_sampler(),
            )
        except OSError as error:
            print(
                f"error: cannot serve telemetry on port {args.serve}: "
                f"{error.strerror or error}",
                file=sys.stderr,
            )
            return 1
        print(
            f"serving /metrics and /healthz on {server.url}",
            file=sys.stderr,
        )

    def on_update(update) -> None:
        window = update.frame.trace.scenario.get(WINDOW_KEY, update.step)
        if update.pair is None:
            print(f"window {window}: stream opened, "
                  f"{update.frame.n_clusters} clusters")
        elif update.failure is not None:
            print(f"window {window}: pair quarantined "
                  f"({update.failure.error}); {len(update.regions)} regions")
        else:
            print(f"window {window}: {len(update.pair.relations)} relations, "
                  f"{len(update.regions)} regions, "
                  f"coverage {update.coverage}%")
        for alert in update.alerts:
            print(format_alert(alert), file=sys.stderr)

    try:
        result = track_windows(
            trace,
            n_windows=args.windows,
            window_ns=args.window_ns,
            settings=settings,
            strict=args.strict,
            cache=_resolve_cache(args),
            on_update=on_update,
            telemetry=telemetry,
            shards=args.shards,
            jobs=args.jobs,
            max_live_windows=args.max_live_windows,
        )
        code = 0
        failures = ()
        if not args.strict:
            code, failures = _report_partial(result)
            result = result.value
        _annotate_watch_quality(result, failures, telemetry)
        print()
        _print_result(result, ["ipc"])
        if args.alerts_jsonl:
            path = telemetry.write_jsonl(_expand_run_id(args.alerts_jsonl))
            print(f"wrote {len(telemetry.alerts)} alert(s) to {path}",
                  file=sys.stderr)
        print(telemetry.summary_line(), file=sys.stderr)
        # Condensed windows no longer carry burst scatter data, so bounded
        # runs ship the tables-only report.
        include_viz = args.max_live_windows is None
        _write_report(
            args, [("watch", result, failures)],
            include_viz=include_viz, stream=telemetry,
        )
        if code == 0 and telemetry.alerts_enabled and telemetry.alerts:
            code = EXIT_ALERTS
        return code
    finally:
        if server is not None:
            grace = getattr(args, "serve_grace", 0.0) or 0.0
            if grace > 0:
                import time as _time

                print(
                    f"holding telemetry endpoints open for {grace:g}s",
                    file=sys.stderr,
                )
                _time.sleep(grace)
            server.close()


def _annotate_watch_quality(result, failures, telemetry) -> None:
    """Mirror the watch run's QualityReport totals into the run ledger.

    A later ``repro-track obs summary`` must show the same headline
    numbers an offline ``--quality`` report would, so the end event
    carries them verbatim rather than a re-derivation.
    """
    from repro.obs import ledger as obsledger
    from repro.obs.alerts import summarize_alerts
    from repro.obs.quality import quality_report

    if obsledger.active_recorder() is None:
        return
    totals = (
        summarize_alerts(telemetry.alerts)
        if telemetry.alerts_enabled
        else None
    )
    report = quality_report(result, failures=failures, alerts=totals)
    obsledger.annotate(
        quality={
            "n_frames": report.n_frames,
            "n_regions": report.n_regions,
            "n_tracked": report.n_tracked,
            "coverage_pct": report.coverage,
            "quarantined": {stage: n for stage, n in report.quarantined},
        },
    )


def _cmd_study(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import get_case_study

    case = get_case_study(args.name)
    study_result = case.run(
        seed=args.seed,
        jobs=args.jobs,
        cache=_resolve_cache(args),
        strict=args.strict,
    )
    code = 0
    failures = ()
    if not args.strict:
        code, failures = _report_partial(study_result)
        study_result = study_result.value
    print(f"case study: {case.name} "
          f"(expected: {case.expected_regions} regions, "
          f"{case.expected_coverage}% coverage)")
    _print_result(study_result.result, ["ipc"])
    if args.render:
        _render(study_result.result, args.render)
    _write_report(args, [(case.name, study_result.result, failures)])
    return code


def _load_and_track(trace_paths: list[str], relevance: float, *, strict: bool = True):
    """Load + track; returns ``(result, failures)``.

    Under ``strict`` the failure tuple is always empty (errors raise);
    under ``--no-strict`` unloadable traces and failing pipeline items
    are quarantined and reported in the tuple.
    """
    from repro.api import quick_track
    from repro.clustering.frames import FrameSettings

    traces, load_failures = _load_traces(trace_paths, strict=strict)
    result = quick_track(
        traces, settings=FrameSettings(relevance=relevance), strict=strict
    )
    if strict:
        return result, ()
    return result.value, tuple(load_failures) + result.failures


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.robust.partial import EXIT_PARTIAL
    from repro.tracking.report import who_is_who

    result, failures = _load_and_track(
        args.traces, args.relevance, strict=args.strict
    )
    print(who_is_who(result, evidence=not args.no_evidence))
    if failures:
        print(f"quarantine: {len(failures)} item(s) failed and were "
              "skipped:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
    if args.html:
        from repro.obs.report import write_report

        path = write_report(args.html, [("who-is-who", result, failures)])
        print(f"wrote run report to {path}", file=sys.stderr)
    return EXIT_PARTIAL if failures else 0


def _cmd_animate(args: argparse.Namespace) -> int:
    from repro.tracking.relabel import relabel_frames
    from repro.viz.animate import render_animation_html

    result, _ = _load_and_track(args.traces, args.relevance)
    relabeled = relabel_frames(result)
    path = render_animation_html(
        relabeled, args.output, interval_ms=args.interval
    )
    print(f"wrote {path} ({len(relabeled)} frames)")
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.analysis.experiments import CASE_STUDIES
    from repro.analysis.report import format_table2

    cache = _resolve_cache(args)
    results = {}
    failures = []
    runs = []
    for case in CASE_STUDIES:
        print(f"running {case.name}...", file=sys.stderr)
        outcome = case.run(jobs=args.jobs, cache=cache, strict=args.strict)
        case_failures = ()
        if not args.strict:
            case_failures = outcome.failures
            failures.extend(case_failures)
            outcome = outcome.value
        results[case.name] = outcome
        runs.append((case.name, outcome.result, tuple(case_failures)))
    print(format_table2(results))
    # Per-case SVG grids would make the ten-study report enormous;
    # table2 reports carry the attribution/quality tables only.
    _write_report(args, runs, include_viz=False)
    if failures:
        from repro.robust.partial import EXIT_PARTIAL

        print(f"quarantine: {len(failures)} item(s) failed and were "
              "skipped:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return EXIT_PARTIAL
    return 0


def _format_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{int(n)} B"  # pragma: no cover - unreachable


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = _resolve_cache(args)
    if cache is None:
        print(
            "error: no cache directory configured "
            "(pass --cache-dir or set REPRO_CACHE)",
            file=sys.stderr,
        )
        return 2
    if args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cache entr{'y' if removed == 1 else 'ies'} "
              f"from {cache.root}")
        return 0
    info = cache.info()
    print(f"cache directory: {info.root}")
    print(f"entries: {info.n_entries}   size: {_format_bytes(info.total_bytes)}")
    for kind, count in info.by_kind.items():
        print(f"  {kind}: {count}")
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.obs.bench import (
        compare_bench_results,
        format_bench_comparison,
        load_bench_results,
    )

    try:
        old = load_bench_results(args.old)
        new = load_bench_results(args.new)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    deltas = compare_bench_results(
        old,
        new,
        threshold=args.threshold,
        min_seconds=args.min_seconds,
        rss_threshold=args.rss_threshold,
        min_rss_kib=args.min_rss_kib,
    )
    print(format_bench_comparison(
        deltas,
        old_only=set(old) - set(new),
        new_only=set(new) - set(old),
    ))
    return 1 if any(delta.failed for delta in deltas) else 0


def _cmd_tune(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.clustering.frames import FrameSettings
    from repro.clustering.tuning import tune_eps
    from repro.trace.io import load_trace

    trace = load_trace(args.trace)
    settings = FrameSettings(
        x_metric=args.x_metric, y_metric=args.y_metric, log_y=args.log_y
    )
    result = tune_eps(trace, settings=settings)
    rows = [
        [f"{c.eps:.4f}", c.n_clusters, f"{c.noise_fraction * 100:.1f}%",
         f"{c.silhouette:.3f}", "<- selected" if c is result.best else ""]
        for c in result.candidates
    ]
    print(format_table(
        ["eps", "clusters", "noise", "silhouette", ""],
        rows,
        title=f"eps tuning for {trace.label()}",
    ))
    print(f"\nsuggested eps: {result.eps:.4f} "
          f"({result.best.n_clusters} clusters)")
    return 0


def _cmd_info(_: argparse.Namespace) -> int:
    from repro.analysis.experiments import CASE_STUDIES
    from repro.apps.registry import APP_BUILDERS
    from repro.machine.machine import MACHINES

    print("applications:")
    for name in sorted(APP_BUILDERS):
        print(f"  {name}")
    print("machines:")
    for name, machine in MACHINES.items():
        print(f"  {name}: {machine.clock_hz / 1e9:.2f} GHz, "
              f"{machine.cores_per_node} cores/node")
    print("case studies (paper Table 2):")
    for case in CASE_STUDIES:
        print(f"  {case.name}: {case.expected_images} images, "
              f"{case.expected_regions} regions, {case.expected_coverage}%")
    return 0


def _format_ts(ts: float | None) -> str:
    if not ts:
        return "-"
    import time as _time

    return _time.strftime("%Y-%m-%d %H:%M:%S", _time.localtime(ts))


def _obs_pick_run(runs, target: str | None):
    """Resolve a ``summary`` target: run-id prefix match, else latest.

    Without a target the most recently *started* completed run wins,
    falling back to the most recent open one (a crashed or in-flight
    run is still worth inspecting).
    """
    if target:
        matches = [
            run
            for run in runs
            if run.run_id == target or run.run_id.startswith(target)
        ]
        return matches[-1] if matches else None
    completed = [run for run in runs if not run.open]
    pool = completed or runs
    return max(pool, key=lambda run: run.started_at) if pool else None


def _cmd_obs(args: argparse.Namespace) -> int:
    import json as _json

    from repro.analysis.report import format_table
    from repro.obs import ledger as obsledger

    if args.action == "serve":
        import time as _time

        from repro.obs import runtime as obsruntime
        from repro.obs.serve import start_metrics_server

        try:
            server = start_metrics_server(
                args.port, sampler=obsruntime.active_sampler()
            )
        except OSError as error:
            print(
                f"error: cannot serve telemetry on port {args.port}: "
                f"{error.strerror or error}",
                file=sys.stderr,
            )
            return 1
        print(
            f"serving /metrics and /healthz on {server.url} "
            "(ctrl-c to stop)",
            file=sys.stderr,
        )
        try:
            while True:
                _time.sleep(3600)
        except KeyboardInterrupt:
            pass
        finally:
            server.close()
        return 0

    ledger = obsledger.resolve_ledger(getattr(args, "ledger_dir", None))
    if ledger is None:
        print(
            "error: no ledger directory configured "
            "(pass --ledger-dir or set REPRO_LEDGER)",
            file=sys.stderr,
        )
        return 2

    if args.action == "tail":
        events = ledger.read_events()
        for event in events[-args.lines:]:
            print(_json.dumps(event, sort_keys=True, separators=(",", ":")))
        if ledger.corrupt_lines:
            print(
                f"skipped {ledger.corrupt_lines} corrupt line(s)",
                file=sys.stderr,
            )
        return 0

    runs = ledger.runs()

    if args.action == "runs":
        rows = [
            [
                run.run_id,
                run.entry,
                _format_ts(run.started_at),
                "open" if run.open else str(run.exit_code),
                f"{run.wall_s:.2f}" if not run.open else "-",
                str(run.rss_peak_kib) if run.rss_peak_kib else "-",
            ]
            for run in runs[-args.lines:]
        ]
        print(format_table(
            ["run id", "entry", "started", "exit", "wall s", "rss KiB"],
            rows,
            title=f"ledger: {ledger.root} ({len(runs)} run(s))",
        ))
        if ledger.corrupt_lines:
            print(
                f"skipped {ledger.corrupt_lines} corrupt line(s)",
                file=sys.stderr,
            )
        return 0

    if args.action == "summary":
        run = _obs_pick_run(runs, args.target)
        if run is None:
            what = f"run {args.target!r}" if args.target else "any run"
            print(f"error: no ledger record matches {what}", file=sys.stderr)
            return 2
        print(f"run {run.run_id}  entry {run.entry}")
        print(f"  started: {_format_ts(run.started_at)}")
        if run.open:
            print("  status:  open (no end event — crashed or running)")
        else:
            print(f"  ended:   {_format_ts(run.ended_at)}")
            print(f"  exit:    {run.exit_code}"
                  + (f"  error: {run.error}" if run.error else ""))
            print(f"  wall:    {run.wall_s:.3f} s")
            if run.rss_peak_kib:
                print(f"  rss:     {run.rss_peak_kib} KiB peak")
        if run.config_digest:
            print(f"  config:  {run.config_digest}")
        if run.argv:
            print(f"  argv:    {' '.join(run.argv)}")
        for label, payload in (("meta", run.meta), ("result", run.end_meta)):
            if payload:
                print(f"  {label}:")
                for key in sorted(payload):
                    print(f"    {key}: {payload[key]}")
        if run.quality:
            print("  quality:")
            for key in sorted(run.quality):
                print(f"    {key}: {run.quality[key]}")
        if run.alerts:
            print("  alerts:")
            for key in sorted(run.alerts):
                print(f"    {key}: {run.alerts[key]}")
        if run.sampler:
            print("  sampler:")
            for key in ("period_s", "n_samples", "rss_max_kib",
                        "cpu_s", "open_fds_max"):
                if key in run.sampler:
                    print(f"    {key}: {run.sampler[key]}")
            stages = run.sampler.get("stages") or {}
            for stage in sorted(stages):
                info = stages[stage]
                print(f"    stage {stage}: {info}")
        return 0

    # export: latest completed run per entry, bench-compare comparable.
    from repro.obs.bench import bench_results_payload

    latest: dict[str, object] = {}
    for run in runs:
        if run.open or run.exit_code not in (0, 3, 4):
            continue
        latest[run.entry] = run
    benches = {
        f"ledger:{entry}": (
            {"wall_time_s": run.wall_s, "rss_peak_kib": run.rss_peak_kib}
            if run.rss_peak_kib
            else {"wall_time_s": run.wall_s}
        )
        for entry, run in latest.items()
    }
    if not benches:
        print("error: no completed runs to export", file=sys.stderr)
        return 2
    payload = bench_results_payload(benches)
    text = _json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if args.output:
        from pathlib import Path

        Path(args.output).write_text(text, encoding="utf-8")
        print(
            f"wrote {len(benches)} entr{'y' if len(benches) == 1 else 'ies'} "
            f"to {args.output}",
            file=sys.stderr,
        )
    else:
        print(text, end="")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.serve import JobServer

    try:
        server = JobServer(
            args.root,
            port=args.port,
            host=args.host,
            workers=args.workers,
            max_queue=args.max_queue,
            tenant_cap=args.tenant_cap,
            job_timeout=args.job_timeout,
        )
    except OSError as error:
        print(
            f"error: cannot serve jobs on port {args.port}: "
            f"{error.strerror or error}",
            file=sys.stderr,
        )
        return 1
    if server.requeued:
        print(
            f"re-queued {len(server.requeued)} interrupted job(s) "
            "from the journal",
            file=sys.stderr,
        )
    print(
        f"serving job API (+ /metrics, /healthz) on {server.url} "
        f"root {args.root} (ctrl-c to stop)",
        file=sys.stderr,
    )
    stop = threading.Event()
    previous = signal.signal(signal.SIGTERM, lambda *_: stop.set())
    try:
        while not stop.wait(3600):
            pass
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.close()
        print("job server stopped", file=sys.stderr)
    return 0


def _serve_client(args: argparse.Namespace):
    """Resolve --url / REPRO_SERVE_URL into a JobClient (or None)."""
    import os

    from repro.serve.client import JobClient

    url = args.url or os.environ.get("REPRO_SERVE_URL")
    if not url:
        print(
            "error: no job server URL (pass --url or set REPRO_SERVE_URL)",
            file=sys.stderr,
        )
        return None
    if "://" not in url:
        url = "http://" + url
    return JobClient(url)


def _cmd_submit(args: argparse.Namespace) -> int:
    import json as _json

    client = _serve_client(args)
    if client is None:
        return 2
    try:
        if args.spec == "-":
            text = sys.stdin.read()
        else:
            with open(args.spec, encoding="utf-8") as handle:
                text = handle.read()
    except OSError as error:
        print(
            f"error: cannot read spec {args.spec!r}: "
            f"{error.strerror or error}",
            file=sys.stderr,
        )
        return 2
    try:
        spec = _json.loads(text)
    except _json.JSONDecodeError as error:
        print(f"error: spec is not valid JSON: {error}", file=sys.stderr)
        return 2
    record = client.submit(args.tenant, spec)
    if not args.wait:
        print(_json.dumps(record, indent=2, sort_keys=True))
        return 0
    final = client.wait(record["job_id"], timeout=args.timeout)
    print(_json.dumps(final, indent=2, sort_keys=True))
    return 0 if final.get("state") == "done" else 2


def _cmd_status(args: argparse.Namespace) -> int:
    import json as _json

    client = _serve_client(args)
    if client is None:
        return 2
    if args.job_id is not None:
        print(_json.dumps(client.status(args.job_id), indent=2, sort_keys=True))
        return 0
    if args.tenant is not None:
        jobs = client.tenant_jobs(args.tenant)
        print(_json.dumps(jobs, indent=2, sort_keys=True))
        return 0
    print("error: give a job id or --tenant NAME", file=sys.stderr)
    return 2


def _cmd_result(args: argparse.Namespace) -> int:
    client = _serve_client(args)
    if client is None:
        return 2
    data = (
        client.report(args.job_id) if args.report else client.result(args.job_id)
    )
    if args.output:
        from pathlib import Path

        Path(args.output).write_bytes(data)
        print(
            f"wrote {len(data)} bytes to {args.output}", file=sys.stderr
        )
    else:
        sys.stdout.buffer.write(data)
        sys.stdout.buffer.flush()
    return 0


_COMMANDS = {
    "simulate": _cmd_simulate,
    "track": _cmd_track,
    "watch": _cmd_watch,
    "study": _cmd_study,
    "table2": _cmd_table2,
    "report": _cmd_report,
    "animate": _cmd_animate,
    "tune": _cmd_tune,
    "bench-compare": _cmd_bench_compare,
    "cache": _cmd_cache,
    "info": _cmd_info,
    "obs": _cmd_obs,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
    "status": _cmd_status,
    "result": _cmd_result,
}


#: Read-only commands that inspect state rather than run the pipeline;
#: recording them would fill the ledger with noise (and ``obs`` reading
#: the ledger while recording into it would observe itself).  The serve
#: *client* commands are remote reads/submissions — the pipeline work
#: they trigger is recorded server-side in per-tenant ledgers.
_LEDGER_EXEMPT = {
    "obs", "cache", "info", "bench-compare", "submit", "status", "result",
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point.

    Returns 0 on success, ``EXIT_TOTAL`` (2) when the pipeline fails
    with a :class:`~repro.errors.ReproError`, and ``EXIT_PARTIAL`` (3)
    when a ``--no-strict`` run finished with quarantined items.
    """
    from repro import obs
    from repro.errors import ReproError
    from repro.obs import ledger as obsledger
    from repro.obs import runtime as obsruntime
    from repro.robust.partial import EXIT_TOTAL

    args = build_parser().parse_args(argv)
    obs.configure_logging(
        getattr(args, "verbose", 0) - getattr(args, "quiet", 0)
    )
    profile = getattr(args, "profile", None)
    if isinstance(profile, str) and profile:
        profile = _expand_run_id(profile)
    serving = getattr(args, "serve", None) is not None
    enabled_here = False
    # --serve implies observability: the exposition endpoints read the
    # metrics registry, which only fills while obs is enabled.
    if (profile is not None or serving) and not obs.enabled():
        obs.enable()
        enabled_here = True
    # Continuous resource sampler: REPRO_OBS_SAMPLE opts in anywhere; a
    # serving watch gets one by default so /metrics carries runtime.*
    # gauges.  Lifecycle (start/stop, ledger summary) lives here.
    sampler = obsruntime.resolve_sampler()
    if sampler is None and serving:
        sampler = obsruntime.ResourceSampler()
    if sampler is not None:
        obsruntime.set_active_sampler(sampler)
        sampler.start()
    ledger_rec = None
    if args.command not in _LEDGER_EXEMPT:
        ledger_rec = obsledger.begin_run(
            f"cli.{args.command}",
            ledger_dir=getattr(args, "ledger_dir", None),
            argv=list(argv) if argv is not None else sys.argv[1:],
        )
    code: int | None = None
    error_name: str | None = None
    try:
        code = _COMMANDS[args.command](args)
        if profile is not None or (obs.enabled() and obs.finished_spans()):
            obs.summary()
            if profile:  # a PATH was given, not the bare flag
                samples = (
                    sampler.snapshot_samples() if sampler is not None else None
                )
                try:
                    path = obs.write_chrome_trace(profile, samples=samples)
                except OSError as error:
                    print(f"error: cannot write profile to {profile!r}: "
                          f"{error.strerror or error}", file=sys.stderr)
                    code = 1
                    return code
                print(f"wrote Chrome trace to {path} "
                      "(load in chrome://tracing)", file=sys.stderr)
        return code
    except ReproError as error:
        # The whole pipeline failed: diagnosable, deliberate, exit 2.
        print(f"error: {error}", file=sys.stderr)
        code = EXIT_TOTAL
        error_name = type(error).__name__
        return code
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        try:
            sys.stdout.close()
        except Exception:
            pass
        code = 0
        return code
    except BaseException as error:
        error_name = type(error).__name__
        raise
    finally:
        if sampler is not None:
            sampler.stop()
            obsruntime.set_active_sampler(None)
            if ledger_rec is not None:
                ledger_rec.annotate(sampler=sampler.summary())
        if ledger_rec is not None:
            obsledger.end_run(
                ledger_rec,
                exit_code=2 if code is None else code,
                error=error_name,
            )
        if enabled_here:
            obs.disable()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
