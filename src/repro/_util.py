"""Small internal helpers shared across subpackages.

These are deliberately tiny and dependency-free; anything substantial
lives in its own module.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import TypeVar

import numpy as np

__all__ = [
    "as_rng",
    "check_positive",
    "check_fraction",
    "check_nonempty",
    "pairwise",
    "format_si",
    "format_pct",
]

T = TypeVar("T")


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed or generator.

    Passing an existing generator returns it unchanged, which lets
    composite models share one stream while still allowing reproducible
    top-level seeding with plain integers.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def check_positive(name: str, value: float) -> float:
    """Validate that *value* is strictly positive; return it."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Validate that *value* lies in [0, 1]; return it."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be within [0, 1], got {value!r}")
    return value


def check_nonempty(name: str, seq: Sequence[T] | np.ndarray) -> Sequence[T] | np.ndarray:
    """Validate that *seq* has at least one element; return it."""
    if len(seq) == 0:
        raise ValueError(f"{name} must not be empty")
    return seq


def pairwise(items: Iterable[T]) -> Iterable[tuple[T, T]]:
    """Yield consecutive pairs ``(items[0], items[1]), (items[1], items[2])...``."""
    iterator = iter(items)
    try:
        prev = next(iterator)
    except StopIteration:
        return
    for item in iterator:
        yield prev, item
        prev = item


_SI_PREFIXES = [(1e12, "T"), (1e9, "G"), (1e6, "M"), (1e3, "k")]


def format_si(value: float, digits: int = 2) -> str:
    """Format a number with an SI magnitude suffix (e.g. ``6.8M``)."""
    magnitude = abs(value)
    for threshold, suffix in _SI_PREFIXES:
        if magnitude >= threshold:
            return f"{value / threshold:.{digits}g}{suffix}"
    return f"{value:.{digits}g}"


def format_pct(value: float, digits: int = 1) -> str:
    """Format a fraction as a signed percentage string (e.g. ``-36.0%``)."""
    return f"{value * 100:+.{digits}f}%"
