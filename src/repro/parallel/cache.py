"""Content-addressed on-disk cache for traces and frame labellings.

Every bench and study re-simulates and re-clusters identical inputs
from scratch; this cache makes those stages incremental.  Entries are
addressed by a SHA-256 over a *canonical key* describing everything the
artefact depends on:

- **traces** — application name, scenario kwargs, seed and the package
  version (the simulators are deterministic given those);
- **frame labellings** — a content digest of the input trace plus the
  :class:`~repro.clustering.frames.FrameSettings` and the package
  version.  Only the per-point cluster labels are stored: points and
  cluster objects are cheap to rebuild, DBSCAN is the expensive part.

The cache is opt-in: it only engages when a directory is given via the
``--cache-dir`` CLI flag / API argument or the ``REPRO_CACHE``
environment variable.  Writes are atomic (temp file + ``os.replace``),
so concurrent runs sharing a directory never observe torn entries.
Corrupted or stale entries are detected (format check, stored-key
echo, payload validation), dropped and recomputed — never crashed on.
Hit/miss/corruption counts flow through :mod:`repro.obs`.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

from repro import obs
from repro._version import __version__
from repro.errors import TraceFormatError
from repro.obs.log import get_logger
from repro.trace.io import trace_from_json, trace_to_json
from repro.trace.trace import Trace

if TYPE_CHECKING:  # import kept lazy to avoid a cycle with clustering.frames
    from repro.clustering.frames import FrameSettings

__all__ = [
    "CACHE_ENV",
    "CacheInfo",
    "PipelineCache",
    "frame_key",
    "resolve_cache",
    "stable_hash",
    "trace_digest",
    "trace_key",
]

log = get_logger(__name__)

#: Environment variable naming the cache directory (opt-in).
CACHE_ENV = "REPRO_CACHE"

#: On-disk entry format; bump to invalidate every existing entry.
#: v2 added the payload content digest (bit-flip detection).
_CACHE_FORMAT = 2


def _canonical(value: Any) -> Any:
    """Reduce *value* to JSON-stable primitives for hashing."""
    if isinstance(value, Mapping):
        return {str(key): _canonical(val) for key, val in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise TypeError(f"value of type {type(value).__name__} cannot be cache-keyed")


def stable_hash(value: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of *value*.

    Mapping order does not matter; floats hash by exact value (``repr``
    round-trips binary float64 in Python 3).
    """
    payload = json.dumps(_canonical(value), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _payload_digest(payload: Any) -> str:
    """SHA-256 over the canonical JSON bytes of a stored payload.

    Written into every entry and re-checked on read, so silent on-disk
    corruption (a flipped bit inside an otherwise well-formed document)
    is caught and the entry recomputed instead of poisoning results.
    """
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def trace_digest(trace: Trace) -> str:
    """Content digest of a trace: metadata plus the raw column bytes."""
    digest = hashlib.sha256()
    meta = json.dumps(
        _canonical(
            {
                "app": trace.app,
                "scenario": trace.scenario,
                "nranks": trace.nranks,
                "clock_hz": trace.clock_hz,
                "counter_names": list(trace.counter_names),
                "callstacks": trace.callstacks.to_strings(),
            }
        ),
        sort_keys=True,
        separators=(",", ":"),
    )
    digest.update(meta.encode("utf-8"))
    for column in (
        trace.rank,
        trace.begin,
        trace.duration,
        trace.callpath_id,
        trace.counters_matrix,
    ):
        digest.update(np.ascontiguousarray(column).tobytes())
    return digest.hexdigest()


def trace_key(
    app: str,
    scenario: Mapping[str, Any],
    seed: int,
    *,
    version: str = __version__,
) -> dict[str, Any]:
    """Cache key of one simulated scenario trace."""
    return {
        "kind": "trace",
        "app": app,
        "scenario": _canonical(scenario),
        "seed": int(seed),
        "version": version,
    }


def frame_key(
    trace: Trace,
    settings: FrameSettings,
    *,
    version: str = __version__,
) -> dict[str, Any]:
    """Cache key of one frame labelling (trace content x settings)."""
    return {
        "kind": "frame",
        "trace": trace_digest(trace),
        "settings": _canonical(asdict(settings)),
        "version": version,
    }


@dataclass(frozen=True)
class CacheInfo:
    """Summary of a cache directory's contents."""

    root: Path
    n_entries: int
    total_bytes: int
    by_kind: dict[str, int]


class PipelineCache:
    """Content-addressed store of pipeline artefacts under one root.

    Entries live at ``<root>/<kind>/<sha256>.json`` wrapping the payload
    with the entry format version and the full key, which is echoed back
    on reads to guard against corruption and format drift.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root).expanduser()

    # -- generic entry plumbing ---------------------------------------
    def _path(self, key: Mapping[str, Any]) -> Path:
        return self.root / str(key.get("kind", "misc")) / f"{stable_hash(key)}.json"

    def _discard(self, path: Path, key: Mapping[str, Any], reason: str) -> None:
        obs.count("cache.corrupt_total", kind=str(key.get("kind", "misc")))
        log.warning("dropping corrupt cache entry %s (%s)", path, reason)
        try:
            path.unlink()
        except OSError:
            pass

    def get(self, key: Mapping[str, Any]) -> Any | None:
        """Fetch the payload stored under *key*, or ``None`` on miss.

        Unreadable, malformed or mismatched entries count as misses
        (after being dropped), so callers simply recompute.
        """
        kind = str(key.get("kind", "misc"))
        path = self._path(key)
        with obs.span("cache.get", kind=kind) as span:
            try:
                with open(path, encoding="utf-8") as handle:
                    document = json.load(handle)
            except FileNotFoundError:
                obs.count("cache.misses_total", kind=kind)
                span.set(outcome="miss")
                return None
            except (OSError, UnicodeDecodeError, json.JSONDecodeError) as error:
                self._discard(path, key, f"unreadable: {error}")
                obs.count("cache.misses_total", kind=kind)
                span.set(outcome="corrupt")
                return None
            if (
                not isinstance(document, dict)
                or document.get("format") != _CACHE_FORMAT
                or document.get("key") != _canonical(key)
                or "payload" not in document
            ):
                self._discard(path, key, "format/key mismatch")
                obs.count("cache.misses_total", kind=kind)
                span.set(outcome="corrupt")
                return None
            if document.get("digest") != _payload_digest(document["payload"]):
                self._discard(path, key, "payload digest mismatch")
                obs.count("cache.misses_total", kind=kind)
                span.set(outcome="corrupt")
                return None
            obs.count("cache.hits_total", kind=kind)
            span.set(outcome="hit")
            return document["payload"]

    def put(self, key: Mapping[str, Any], payload: Any) -> Path:
        """Atomically store *payload* under *key*; returns the entry path."""
        kind = str(key.get("kind", "misc"))
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {
            "format": _CACHE_FORMAT,
            "key": _canonical(key),
            "digest": _payload_digest(payload),
            "payload": payload,
        }
        with obs.span("cache.put", kind=kind):
            descriptor, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                    json.dump(document, handle)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
            obs.count("cache.writes_total", kind=kind)
        return path

    def invalidate(self, key: Mapping[str, Any]) -> None:
        """Drop the entry stored under *key* as semantically corrupt."""
        self._discard(self._path(key), key, "payload failed validation")

    # -- typed helpers -------------------------------------------------
    def get_trace(self, key: Mapping[str, Any]) -> Trace | None:
        """Fetch a cached trace, or ``None`` on miss/corruption.

        The rebuilt trace is checked against the structural invariants
        (:func:`repro.robust.check_trace`); an entry decoding to an
        invalid trace is dropped like any other corruption.
        """
        from repro.robust.validate import check_trace

        payload = self.get(key)
        if payload is None:
            return None
        try:
            trace = trace_from_json(payload)
        except TraceFormatError as error:
            self._discard(self._path(key), key, f"trace payload: {error}")
            return None
        issues = check_trace(trace)
        if issues:
            summary = "; ".join(str(issue) for issue in issues)
            self._discard(self._path(key), key, f"invalid trace: {summary}")
            return None
        return trace

    def put_trace(self, key: Mapping[str, Any], trace: Trace) -> Path:
        """Store a simulated trace."""
        return self.put(key, trace_to_json(trace))

    def get_labels(self, key: Mapping[str, Any]) -> np.ndarray | None:
        """Fetch cached per-point cluster labels, or ``None``."""
        payload = self.get(key)
        if payload is None:
            return None
        try:
            labels = np.asarray(payload["labels"], dtype=np.int32)
            if labels.ndim != 1:
                raise ValueError(f"labels have shape {labels.shape}")
            if labels.size and int(labels.min()) < 0:
                raise ValueError(
                    f"labels contain negative ids (min {int(labels.min())})"
                )
        except (KeyError, TypeError, ValueError, OverflowError) as error:
            self._discard(self._path(key), key, f"labels payload: {error}")
            return None
        return labels

    def put_labels(self, key: Mapping[str, Any], labels: np.ndarray) -> Path:
        """Store one frame's per-point cluster labels."""
        return self.put(key, {"labels": np.asarray(labels).tolist()})

    # -- maintenance ---------------------------------------------------
    def _entries(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(
            path
            for path in self.root.glob("*/*.json")
            if not path.name.startswith(".tmp-")
        )

    def info(self) -> CacheInfo:
        """Entry count and on-disk footprint, broken down by kind."""
        by_kind: dict[str, int] = {}
        total = 0
        entries = self._entries()
        for path in entries:
            by_kind[path.parent.name] = by_kind.get(path.parent.name, 0) + 1
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return CacheInfo(
            root=self.root,
            n_entries=len(entries),
            total_bytes=total,
            by_kind=dict(sorted(by_kind.items())),
        )

    def clear(self) -> int:
        """Delete every entry (and leftover temp file); returns the count."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
            except OSError:
                continue
            if not path.name.startswith(".tmp-"):
                removed += 1
        return removed

    def __repr__(self) -> str:
        return f"PipelineCache(root={str(self.root)!r})"


def resolve_cache(
    cache_dir: str | Path | None = None,
) -> PipelineCache | None:
    """Build the cache from an explicit directory or ``REPRO_CACHE``.

    Returns ``None`` when neither is set — caching stays opt-in.
    """
    root = cache_dir or os.environ.get(CACHE_ENV, "").strip()
    return PipelineCache(root) if root else None
