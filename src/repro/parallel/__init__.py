"""repro.parallel — parallel execution and incremental caching.

Two orthogonal levers for making the pipeline fast on real workloads:

- :mod:`repro.parallel.executor` — a deterministic ordered :func:`pmap`
  over ``serial``/``process`` backends, driven by ``--jobs/-j`` or
  ``REPRO_JOBS``.  Parallel results are bit-identical to serial.
- :mod:`repro.parallel.cache` — an opt-in content-addressed on-disk
  cache of simulated traces and frame labellings, driven by
  ``--cache-dir`` or ``REPRO_CACHE``.

See ``docs/performance.md`` for usage, expected speedups and when the
serial path wins.
"""

from __future__ import annotations

from repro.parallel.cache import (
    CACHE_ENV,
    CacheInfo,
    PipelineCache,
    frame_key,
    resolve_cache,
    stable_hash,
    trace_digest,
    trace_key,
)
from repro.parallel.executor import (
    JOBS_ENV,
    ProcessExecutor,
    SerialExecutor,
    get_executor,
    pmap,
    resolve_jobs,
)

__all__ = [
    "CACHE_ENV",
    "CacheInfo",
    "JOBS_ENV",
    "PipelineCache",
    "ProcessExecutor",
    "SerialExecutor",
    "frame_key",
    "get_executor",
    "pmap",
    "resolve_cache",
    "resolve_jobs",
    "stable_hash",
    "trace_digest",
    "trace_key",
]
