"""Executor abstraction: deterministic, ordered parallel mapping.

The pipeline's three dominant stages are embarrassingly parallel —
per scenario (simulation), per trace (frame construction) and per
consecutive pair (the combination algorithm).  This module provides the
one primitive they all share: :func:`pmap`, an *ordered* map that runs
tasks either in-process (``serial`` backend) or across worker processes
(``process`` backend over :mod:`concurrent.futures`).

Guarantees:

- **Determinism** — results come back in input order regardless of
  completion order, so parallel runs are bit-identical to serial ones.
- **Graceful degradation** — if the pool cannot be created or breaks
  mid-flight (fork failure, unpicklable task, killed worker), the
  *unfinished* tasks are re-run serially instead of crashing; tasks
  that already completed keep their pool results, so side-effecting
  tasks never double-execute.  Exceptions raised *by the task itself*
  are not swallowed; they propagate as in a serial run.
- **Auto-selection** — the process backend is only engaged when it can
  pay for itself: more than one job requested and at least
  ``min_tasks`` items to spread.

Worker count resolution order: explicit ``jobs`` argument, then the
``REPRO_JOBS`` environment variable, then 1 (serial).  ``0``, negative
values or ``auto`` mean "one job per CPU".
"""

from __future__ import annotations

import concurrent.futures
import os
import pickle
import time
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterable, NamedTuple, Sequence, TypeVar

from repro import obs
from repro.obs.log import get_logger

__all__ = [
    "JOBS_ENV",
    "RemoteTaskError",
    "SerialExecutor",
    "ProcessExecutor",
    "TaskTimeout",
    "WorkerDeath",
    "get_executor",
    "pmap",
    "resolve_jobs",
    "run_isolated",
]

log = get_logger(__name__)

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable consulted when no explicit job count is given.
JOBS_ENV = "REPRO_JOBS"

#: Below this many tasks a process pool cannot amortise its startup.
DEFAULT_MIN_TASKS = 2

#: Errors that mean "the pool is unusable", as opposed to errors raised
#: by the mapped function itself (which must propagate unchanged).
#: AttributeError/TypeError cover unpicklable callables and arguments
#: (CPython reports those instead of PicklingError); if the task itself
#: raised one of these, the serial re-run reproduces it faithfully.
_POOL_ERRORS = (
    BrokenProcessPool,
    pickle.PicklingError,
    OSError,
    AttributeError,
    TypeError,
)


def resolve_jobs(jobs: int | None = None) -> int:
    """Resolve the worker count from the argument or ``REPRO_JOBS``.

    ``None`` defers to the environment; an unset/empty variable means 1
    (serial).  ``0``, negatives and ``auto`` map to the CPU count.  A
    malformed environment value logs a warning and falls back to 1, so
    a stray export never breaks a run.
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        if not raw:
            return 1
        if raw.lower() == "auto":
            return os.cpu_count() or 1
        try:
            jobs = int(raw)
        except ValueError:
            log.warning(
                "ignoring malformed %s=%r (expected an integer or 'auto')",
                JOBS_ENV, raw,
            )
            return 1
    if jobs <= 0:
        return os.cpu_count() or 1
    return int(jobs)


class SerialExecutor:
    """In-process backend: a plain ordered loop."""

    name = "serial"
    jobs = 1

    def pmap(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Apply *fn* to every item, in order."""
        return [fn(item) for item in items]


class ProcessExecutor:
    """Worker-process backend over :class:`~concurrent.futures.ProcessPoolExecutor`.

    Results are gathered future-by-future in submission order, so the
    output list matches the input order exactly.  Pool-level failures
    fall back to a serial re-run of only the unfinished tasks
    (completed pool results are kept; ``parallel.fallback_tasks_total``
    counts exactly the re-run items).
    """

    name = "process"

    def __init__(self, jobs: int) -> None:
        if jobs < 2:
            raise ValueError(f"process backend needs >= 2 jobs, got {jobs}")
        self.jobs = int(jobs)

    def pmap(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Apply *fn* to every item across the pool, preserving order."""
        workers = min(self.jobs, len(items)) or 1
        timed: list[tuple[R, _WorkerTiming] | None] = [None] * len(items)
        futures: list[concurrent.futures.Future] = []
        try:
            with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [pool.submit(_timed_call, fn, item) for item in items]
                for index, future in enumerate(futures):
                    timed[index] = future.result()
        except _POOL_ERRORS as error:
            # Salvage whatever already finished cleanly: tasks can have
            # side effects (cache writes, counters), so re-running the
            # whole batch would double-execute completed work.
            for index, future in enumerate(futures):
                if (
                    timed[index] is None
                    and future.done()
                    and not future.cancelled()
                ):
                    try:
                        if future.exception() is None:
                            timed[index] = future.result()
                    except concurrent.futures.CancelledError:
                        pass
            unfinished = [i for i, entry in enumerate(timed) if entry is None]
            log.warning(
                "process pool failed (%s: %s); falling back to serial "
                "execution of %d of %d task(s)",
                type(error).__name__, error, len(unfinished), len(items),
            )
            obs.count("parallel.fallbacks_total", backend=self.name)
            obs.count(
                "parallel.fallback_tasks_total", len(unfinished),
                backend=self.name,
            )
            for index in unfinished:
                start = time.perf_counter()
                cpu0 = time.process_time()
                result = fn(items[index])
                timed[index] = (
                    result,
                    _WorkerTiming(
                        os.getpid(),
                        start,
                        time.perf_counter(),
                        time.process_time() - cpu0,
                        _worker_rss_kib(),
                    ),
                )
        if obs.enabled():
            busy = sum(t.end - t.start for _, t in timed)
            obs.observe("parallel.task_seconds", busy)
            # Worker-side sampler rollup: each task ships its CPU burn
            # and its worker's RSS peak home, so the parent's telemetry
            # covers the whole process tree, not just itself.
            worker_cpu = sum(t.cpu_s for _, t in timed)
            worker_rss = max((t.rss_kib for _, t in timed), default=0)
            obs.observe("parallel.worker_cpu_seconds", worker_cpu)
            if worker_rss:
                obs.set_gauge("parallel.worker_rss_peak_kib", worker_rss)
            span = obs.current_span()
            if span is not None:
                span.set(
                    busy_s=round(busy, 6),
                    workers=workers,
                    worker_cpu_s=round(worker_cpu, 6),
                    worker_rss_peak_kib=worker_rss,
                )
            _record_worker_spans(span, [t for _, t in timed])
        return [result for result, _ in timed]


class _WorkerTiming(NamedTuple):
    """One task's in-worker measurement: who ran it, when, at what cost.

    ``start``/``end`` are the worker's raw ``perf_counter`` readings.
    On Linux ``perf_counter`` is ``CLOCK_MONOTONIC``, which all
    processes share, so the parent can rebase them onto its own
    observability epoch and place the task on the worker's timeline.
    ``cpu_s`` is the task's in-worker CPU burn and ``rss_kib`` the
    worker's RSS peak after the task, so the parent-side sampler rollup
    can account resources spent outside its own process.
    """

    pid: int
    start: float
    end: float
    cpu_s: float = 0.0
    rss_kib: int = 0


def _worker_rss_kib() -> int:
    """The calling process's peak RSS in KiB (0 where unsupported)."""
    try:
        import resource

        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    except (ImportError, ValueError, OSError):  # pragma: no cover
        return 0


def _record_worker_spans(parent, timings: Sequence[_WorkerTiming]) -> None:
    """Stitch the workers' task timings into the parent span tree.

    Each task becomes a finished ``parallel.worker_task`` span tagged
    with the worker pid and a ``flow_id`` naming the dispatching pmap
    span — the Chrome-trace exporter turns those into flow arrows from
    the dispatch to each worker lane (see
    :func:`repro.obs.export.chrome_trace_events`).
    """
    from repro.obs.core import STATE
    from repro.obs.spans import record_span

    flow_id = getattr(parent, "span_id", 0)
    for index, timing in enumerate(timings):
        record_span(
            "parallel.worker_task",
            timing.start - STATE.epoch,
            timing.end - STATE.epoch,
            parent=parent if flow_id else None,
            worker_pid=timing.pid,
            task_index=index,
            flow_id=flow_id,
        )


def _timed_call(fn: Callable[[T], R], item: T) -> tuple[R, _WorkerTiming]:
    """Run one task in a worker, returning (result, worker timing).

    Timing inside the worker lets the parent compute true utilisation
    (busy seconds over ``workers x wall``) without shipping the
    recorder state across process boundaries.
    """
    start = time.perf_counter()
    cpu0 = time.process_time()
    result = fn(item)
    return result, _WorkerTiming(
        os.getpid(),
        start,
        time.perf_counter(),
        time.process_time() - cpu0,
        _worker_rss_kib(),
    )


class TaskTimeout(TimeoutError):
    """An isolated task overran its deadline; its worker was killed."""


class WorkerDeath(RuntimeError):
    """An isolated task's worker process died before returning.

    Raised when the worker exits without sending an outcome — a SIGKILL
    from the OOM killer, a hard crash in a C extension, or an operator
    kill.  The exit code (negative = killed by that signal number) is
    in the message.
    """


class RemoteTaskError(RuntimeError):
    """An isolated task raised; carries the original error's identity.

    Exceptions cannot always cross the process boundary intact
    (tracebacks and unpicklable payloads die with the worker), so the
    worker ships ``(type name, message)`` and the parent raises this
    wrapper.  :attr:`error_type` preserves the original class name for
    failure records.
    """

    def __init__(self, error_type: str, message: str) -> None:
        super().__init__(f"{error_type}: {message}")
        self.error_type = error_type
        self.message = message


def _isolated_main(conn, fn: Callable[[T], R], item: T) -> None:
    """Worker entry point: run the task, ship the outcome, exit."""
    try:
        payload: tuple = ("ok", fn(item))
    except BaseException as exc:  # noqa: BLE001 - identity must travel home
        payload = ("error", type(exc).__name__, str(exc))
    try:
        conn.send(payload)
    except (BrokenPipeError, OSError):  # parent gave up (timeout kill race)
        pass
    finally:
        conn.close()


def run_isolated(
    fn: Callable[[T], R],
    item: T,
    *,
    timeout: float | None = None,
) -> R:
    """Run one task in a dedicated worker process with a hard deadline.

    The complement of :func:`pmap` for long-lived services: where a
    pool amortises startup over a batch, ``run_isolated`` buys *blast
    containment* — the task gets its own process, so a runaway or
    killed task can be reaped without poisoning a shared pool, and the
    caller learns exactly which task died (a broken shared pool cannot
    attribute the death).  The job server runs every tracking job
    through this.

    Raises
    ------
    TaskTimeout
        The task exceeded *timeout* seconds; its worker was killed.
    WorkerDeath
        The worker died (signal, hard crash) before returning.
    RemoteTaskError
        The task itself raised; ``error_type`` names the original
        exception class.
    """
    import multiprocessing

    ctx = multiprocessing.get_context()
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(
        target=_isolated_main, args=(child_conn, fn, item), daemon=False
    )
    start = time.perf_counter()
    proc.start()
    child_conn.close()
    try:
        # poll() goes readable on data *or* on EOF (worker death closed
        # the write end), so one wait covers both outcomes.
        if not parent_conn.poll(timeout):
            proc.kill()
            proc.join()
            obs.count("parallel.isolated_total", outcome="timeout")
            raise TaskTimeout(
                f"isolated task exceeded {timeout:g}s and was killed"
            )
        try:
            outcome = parent_conn.recv()
        except (EOFError, OSError):
            proc.join()
            obs.count("parallel.isolated_total", outcome="worker_death")
            raise WorkerDeath(
                f"worker pid {proc.pid} died before returning "
                f"(exit code {proc.exitcode})"
            ) from None
    finally:
        parent_conn.close()
    proc.join()
    if obs.enabled():
        obs.observe("parallel.task_seconds", time.perf_counter() - start)
    if outcome[0] == "error":
        obs.count("parallel.isolated_total", outcome="error")
        raise RemoteTaskError(outcome[1], outcome[2])
    obs.count("parallel.isolated_total", outcome="ok")
    return outcome[1]


Executor = SerialExecutor | ProcessExecutor


def get_executor(
    jobs: int | None = None,
    *,
    n_tasks: int | None = None,
    min_tasks: int = DEFAULT_MIN_TASKS,
) -> Executor:
    """Pick a backend for *n_tasks* tasks at the resolved job count.

    Serial is chosen whenever it is at least as good: one job, or fewer
    tasks than *min_tasks* (a pool cannot amortise its startup on a
    single task).
    """
    resolved = resolve_jobs(jobs)
    if resolved <= 1 or (n_tasks is not None and n_tasks < min_tasks):
        return SerialExecutor()
    return ProcessExecutor(resolved)


def pmap(
    fn: Callable[[T], R],
    items: Iterable[T],
    *,
    jobs: int | None = None,
    min_tasks: int = DEFAULT_MIN_TASKS,
    label: str = "parallel.pmap",
) -> list[R]:
    """Ordered map over *items*, parallel when it pays off.

    Parameters
    ----------
    fn:
        Task function.  For the process backend it must be picklable
        (module-level); closures silently degrade to a serial re-run
        via the pool-failure fallback.
    items:
        Task inputs; materialised once, results match their order.
    jobs:
        Worker count; ``None`` defers to ``REPRO_JOBS`` (default 1).
    min_tasks:
        Minimum batch size before a pool is considered.
    label:
        Span name recorded for the batch (dispatch observability).
    """
    batch = list(items)
    executor = get_executor(jobs, n_tasks=len(batch), min_tasks=min_tasks)
    if not batch:
        return []
    with obs.span(
        label, n_tasks=len(batch), jobs=executor.jobs, backend=executor.name
    ) as span:
        start = time.perf_counter()
        results = executor.pmap(fn, batch)
        if obs.enabled():
            wall = time.perf_counter() - start
            obs.count("parallel.tasks_total", len(batch), backend=executor.name)
            obs.count("parallel.batches_total", backend=executor.name)
            busy = span.attrs.get("busy_s") if hasattr(span, "attrs") else None
            if busy is not None and wall > 0 and executor.jobs > 0:
                span.set(
                    utilisation=round(
                        min(1.0, busy / (wall * executor.jobs)), 4
                    )
                )
        return results
