"""Partial results: quarantine records for gracefully degraded runs.

A multi-item pipeline stage (the scenarios of a study, the per-trace
frame construction, the per-pair combination) run in non-strict mode
quarantines failing items instead of aborting: each failure becomes an
:class:`ItemFailure` record and the surviving items are carried through
as a :class:`PartialResult`.  The CLI maps the three possible outcomes
to distinct exit codes so scripts can tell them apart:

========================  ==========================================
:data:`EXIT_OK` (0)       everything succeeded
:data:`EXIT_TOTAL` (2)    nothing usable was produced (a
                          :class:`~repro.errors.ReproError` escaped)
:data:`EXIT_PARTIAL` (3)  the run completed but quarantined items
========================  ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generic, TypeVar

__all__ = [
    "EXIT_OK",
    "EXIT_PARTIAL",
    "EXIT_TOTAL",
    "ItemFailure",
    "PartialResult",
]

#: Exit code of a fully successful run.
EXIT_OK = 0

#: Exit code of a total failure (no usable result was produced).
EXIT_TOTAL = 2

#: Exit code of a partial failure (result produced, items quarantined).
EXIT_PARTIAL = 3

T = TypeVar("T")


@dataclass(frozen=True, slots=True)
class ItemFailure:
    """One quarantined pipeline item.

    Attributes
    ----------
    item:
        Human-readable name of the failed item (a trace label, a file
        path, a ``"frame[i] -> frame[i+1]"`` pair description).
    stage:
        Pipeline stage that failed (``"load"``, ``"simulate"``,
        ``"validate"``, ``"frame"``, ``"pair"``).
    error:
        Exception class name.
    message:
        The exception message.
    """

    item: str
    stage: str
    error: str
    message: str

    @classmethod
    def from_exception(cls, item: str, stage: str, exc: BaseException) -> "ItemFailure":
        """Build a failure record from a caught exception."""
        return cls(
            item=str(item),
            stage=stage,
            error=type(exc).__name__,
            message=str(exc),
        )

    def __str__(self) -> str:
        return f"[{self.stage}] {self.item}: {self.error}: {self.message}"


@dataclass(frozen=True)
class PartialResult(Generic[T]):
    """A degraded-but-usable result plus the items it had to quarantine.

    Non-strict pipeline entry points (``quick_track(strict=False)``,
    ``Tracker.run(strict=False)``, ``ParametricStudy.run(strict=False)``)
    always return a :class:`PartialResult`; :attr:`failures` is empty
    when nothing went wrong, so ``result.ok`` distinguishes clean from
    degraded runs with one check.

    Attributes
    ----------
    value:
        The result computed from the surviving items.
    failures:
        One record per quarantined item, in pipeline order.
    """

    value: T
    failures: tuple[ItemFailure, ...] = field(default=())

    @property
    def ok(self) -> bool:
        """True when no item was quarantined."""
        return not self.failures

    @property
    def n_quarantined(self) -> int:
        """Number of quarantined items."""
        return len(self.failures)

    @property
    def exit_code(self) -> int:
        """:data:`EXIT_OK` or :data:`EXIT_PARTIAL`."""
        return EXIT_OK if self.ok else EXIT_PARTIAL

    def quarantined_items(self) -> tuple[str, ...]:
        """Names of the quarantined items, in pipeline order."""
        return tuple(failure.item for failure in self.failures)

    def summary(self) -> str:
        """Multi-line quarantine summary for terminal output."""
        if self.ok:
            return "quarantine: empty (all items succeeded)"
        lines = [
            f"quarantine: {self.n_quarantined} item"
            f"{'' if self.n_quarantined == 1 else 's'} failed"
        ]
        lines.extend(f"  - {failure}" for failure in self.failures)
        return "\n".join(lines)

    def unwrap(self) -> T:
        """Return :attr:`value`; raise if any item was quarantined.

        Raises
        ------
        repro.errors.ReproError
            When at least one item failed, carrying the summary.
        """
        if self.failures:
            from repro.errors import ReproError

            raise ReproError(self.summary())
        return self.value

    def __repr__(self) -> str:
        return (
            f"PartialResult(value={type(self.value).__name__}, "
            f"n_quarantined={self.n_quarantined})"
        )
