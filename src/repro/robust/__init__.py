"""repro.robust — input validation and graceful degradation.

The pipeline ingests external artifacts (Paraver ``.prv`` traces,
cached JSON entries, user-supplied scenario configurations) that can be
arbitrarily malformed.  This package is the hardening layer:

- :mod:`repro.robust.validate` checks structural invariants of traces,
  frames and study definitions at every pipeline entry point and raises
  the :mod:`repro.errors` taxonomy with actionable messages — never a
  raw ``ValueError`` from deep inside NumPy;
- :mod:`repro.robust.partial` models graceful degradation: multi-item
  stages quarantine failing items into a :class:`PartialResult` instead
  of aborting the whole run, and the CLI maps total vs partial failure
  to distinct exit codes.

See ``docs/robustness.md`` for the invariant catalogue, the strict vs
non-strict semantics and the fault-injection harness under
``tests/faults/``.
"""

from __future__ import annotations

from repro.robust.partial import (
    EXIT_OK,
    EXIT_PARTIAL,
    EXIT_TOTAL,
    ItemFailure,
    PartialResult,
)
from repro.robust.validate import (
    ValidationIssue,
    check_trace,
    validate_frame,
    validate_study,
    validate_trace,
)

__all__ = [
    "EXIT_OK",
    "EXIT_PARTIAL",
    "EXIT_TOTAL",
    "ItemFailure",
    "PartialResult",
    "ValidationIssue",
    "check_trace",
    "validate_frame",
    "validate_study",
    "validate_trace",
]
