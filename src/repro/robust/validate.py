"""Structural validation of traces, frames and study definitions.

Every pipeline entry point that ingests external data (``load_prv``,
``load_trace``, the cache load paths, ``make_frame``, ``Tracker.run``,
``ParametricStudy.run``) funnels through these checks so that malformed
input surfaces as a diagnosable :mod:`repro.errors` exception at the
boundary instead of a raw ``ValueError`` or a NumPy warning deep inside
clustering.

Trace invariants checked
------------------------
- the trace has at least one metric column;
- ``begin`` and ``duration`` are finite and durations non-negative;
- hardware counters are finite and non-negative;
- burst times are monotone per rank: a rank's bursts, ordered by begin
  time, must not overlap (duplicated bursts are a special case);
- rank and call-path ids are consistent with ``nranks`` and the
  call-stack table.

``validate_trace(strict=True)`` raises :class:`~repro.errors.TraceError`
on the first batch of violations; ``strict=False`` *repairs* what can
be repaired by dropping the offending bursts (with a warning and the
``robust.recovered_total`` obs counter) and only raises for
unrepairable structure (no metric columns at all).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro import obs
from repro.errors import ClusteringError, StudyError, TraceError
from repro.obs.log import get_logger
from repro.trace.trace import Trace

if TYPE_CHECKING:  # import kept lazy: clustering.frames must stay importable first
    from repro.analysis.study import ParametricStudy
    from repro.clustering.frames import Frame

__all__ = [
    "ValidationIssue",
    "check_trace",
    "validate_frame",
    "validate_study",
    "validate_trace",
]

log = get_logger(__name__)

#: Sub-nanosecond tolerance for per-rank overlap checks: Paraver times
#: are integer nanoseconds, so anything below this is rounding fuzz.
_OVERLAP_TOL = 1e-10


@dataclass(frozen=True, slots=True)
class ValidationIssue:
    """One violated invariant.

    Attributes
    ----------
    check:
        Stable identifier of the invariant (``"finite-counters"``...).
    message:
        Human-readable description with concrete numbers.
    n_affected:
        Number of bursts involved (0 for trace-level issues).
    repairable:
        Whether dropping the affected bursts restores the invariant.
    """

    check: str
    message: str
    n_affected: int = 0
    repairable: bool = False

    def __str__(self) -> str:
        return f"{self.check}: {self.message}"


def _bad_burst_mask(trace: Trace) -> tuple[np.ndarray, list[ValidationIssue]]:
    """Mask of bursts violating repairable invariants, plus the issues."""
    issues: list[ValidationIssue] = []
    bad = np.zeros(trace.n_bursts, dtype=bool)
    if trace.n_bursts == 0:
        return bad, issues

    finite_times = np.isfinite(trace.begin) & np.isfinite(trace.duration)
    if not finite_times.all():
        n = int((~finite_times).sum())
        issues.append(
            ValidationIssue(
                check="finite-times",
                message=f"{n} burst(s) have NaN or infinite begin/duration",
                n_affected=n,
                repairable=True,
            )
        )
        bad |= ~finite_times

    negative = finite_times & (trace.duration < 0)
    if negative.any():
        n = int(negative.sum())
        issues.append(
            ValidationIssue(
                check="non-negative-durations",
                message=f"{n} burst(s) have negative durations",
                n_affected=n,
                repairable=True,
            )
        )
        bad |= negative

    counters = trace.counters_matrix
    finite_counters = np.isfinite(counters).all(axis=1)
    if not finite_counters.all():
        n = int((~finite_counters).sum())
        issues.append(
            ValidationIssue(
                check="finite-counters",
                message=(
                    f"{n} burst(s) carry NaN or infinite hardware counters "
                    f"(columns: {list(trace.counter_names)})"
                ),
                n_affected=n,
                repairable=True,
            )
        )
        bad |= ~finite_counters

    with np.errstate(invalid="ignore"):
        negative_counters = (counters < 0).any(axis=1) & finite_counters
    if negative_counters.any():
        n = int(negative_counters.sum())
        issues.append(
            ValidationIssue(
                check="non-negative-counters",
                message=f"{n} burst(s) carry negative hardware counters",
                n_affected=n,
                repairable=True,
            )
        )
        bad |= negative_counters

    # Monotone burst times per rank: order by (rank, begin) and flag the
    # later burst of every overlapping same-rank pair.  Exact duplicates
    # are the common corruption and fall out of the same check.
    usable = ~bad
    if usable.sum() >= 2:
        idx = np.flatnonzero(usable)
        order = np.lexsort((trace.end[idx], trace.begin[idx], trace.rank[idx]))
        idx = idx[order]
        same_rank = trace.rank[idx][1:] == trace.rank[idx][:-1]
        overlap = same_rank & (
            trace.begin[idx][1:] < trace.end[idx][:-1] - _OVERLAP_TOL
        )
        if overlap.any():
            n = int(overlap.sum())
            dup = overlap & (
                np.abs(trace.begin[idx][1:] - trace.begin[idx][:-1]) <= _OVERLAP_TOL
            ) & (
                np.abs(trace.end[idx][1:] - trace.end[idx][:-1]) <= _OVERLAP_TOL
            )
            detail = (
                f" ({int(dup.sum())} exact duplicate(s))" if dup.any() else ""
            )
            issues.append(
                ValidationIssue(
                    check="monotone-burst-times",
                    message=(
                        f"{n} burst(s) overlap an earlier burst of the same "
                        f"rank{detail}; per-rank burst times must be monotone"
                    ),
                    n_affected=n,
                    repairable=True,
                )
            )
            bad[idx[1:][overlap]] = True
    return bad, issues


def _structural_issues(trace: Trace) -> list[ValidationIssue]:
    """Trace-level invariants that dropping bursts cannot repair."""
    issues: list[ValidationIssue] = []
    if len(trace.counter_names) == 0:
        issues.append(
            ValidationIssue(
                check="metric-columns",
                message="trace has no counter columns; nothing to cluster on",
            )
        )
    # Rank / call-path consistency is enforced by the Trace constructor,
    # but re-check here: validation also guards objects rebuilt from
    # adversarial payloads through paths that bypass it.
    if trace.n_bursts:
        if trace.rank.size and (
            int(trace.rank.min()) < 0 or int(trace.rank.max()) >= trace.nranks
        ):
            issues.append(
                ValidationIssue(
                    check="consistent-ranks",
                    message=(
                        f"burst ranks span [{int(trace.rank.min())}, "
                        f"{int(trace.rank.max())}] outside [0, {trace.nranks})"
                    ),
                )
            )
        if trace.callpath_id.size and (
            int(trace.callpath_id.min()) < 0
            or int(trace.callpath_id.max()) >= len(trace.callstacks)
        ):
            issues.append(
                ValidationIssue(
                    check="consistent-callpaths",
                    message=(
                        f"call-path ids span [{int(trace.callpath_id.min())}, "
                        f"{int(trace.callpath_id.max())}] outside the "
                        f"{len(trace.callstacks)}-entry callstack table"
                    ),
                )
            )
    return issues


def check_trace(trace: Trace) -> list[ValidationIssue]:
    """Inspect *trace* and return every violated invariant (no raising)."""
    _, burst_issues = _bad_burst_mask(trace)
    return _structural_issues(trace) + burst_issues


def _raise_trace_error(trace: Trace, issues: list[ValidationIssue], where: str | None) -> None:
    origin = where or trace.label()
    details = "\n".join(f"  - {issue}" for issue in issues)
    raise TraceError(
        f"trace {origin!r} failed validation "
        f"({len(issues)} invariant(s) violated):\n{details}\n"
        "Rerun with strict=False (CLI: --no-strict) to drop the offending "
        "bursts and continue."
    )


def validate_trace(
    trace: Trace, *, strict: bool = True, where: str | None = None
) -> Trace:
    """Check *trace* against the structural invariants.

    Parameters
    ----------
    trace:
        The trace to validate.
    strict:
        When true (the default), raise :class:`~repro.errors.TraceError`
        describing every violated invariant.  When false, repair what
        can be repaired by dropping the offending bursts — logged with a
        warning and counted on ``robust.recovered_total`` — and raise
        only for unrepairable structure.
    where:
        Origin shown in messages (a file path); defaults to the trace
        label.

    Returns
    -------
    Trace
        The input trace (strict) or the repaired trace (non-strict).
    """
    structural = _structural_issues(trace)
    bad, burst_issues = _bad_burst_mask(trace)
    if strict:
        issues = structural + burst_issues
        if issues:
            _raise_trace_error(trace, issues, where)
        return trace
    if structural:
        _raise_trace_error(trace, structural, where)
    if burst_issues:
        n_dropped = int(bad.sum())
        origin = where or trace.label()
        for issue in burst_issues:
            log.warning("trace %s: %s (non-strict: dropping)", origin, issue)
        obs.count("robust.recovered_total", n_dropped, check="trace")
        return trace.select(~bad)
    return trace


def validate_frame(frame: "Frame", *, where: str | None = None) -> "Frame":
    """Check the internal consistency of a built frame.

    Raises :class:`~repro.errors.ClusteringError` when the labelling,
    points and cluster objects disagree — the symptom of a corrupt cache
    entry or a hand-assembled frame.
    """
    origin = where or frame.label
    labels = frame.labels
    if labels.shape != (frame.n_points,):
        raise ClusteringError(
            f"frame {origin!r}: labelling of shape {labels.shape} does not "
            f"match the {frame.n_points}-point frame"
        )
    if frame.points.ndim != 2 or frame.points.shape[1] < 2:
        raise ClusteringError(
            f"frame {origin!r}: points matrix of shape {frame.points.shape} "
            "needs at least the two plot axes"
        )
    if not np.isfinite(frame.points).all():
        raise ClusteringError(
            f"frame {origin!r}: points contain NaN or infinite metric values"
        )
    if labels.size and int(labels.min()) < 0:
        raise ClusteringError(
            f"frame {origin!r}: labels must be >= 0 (0 = noise), "
            f"got minimum {int(labels.min())}"
        )
    label_ids = set(int(l) for l in np.unique(labels)) - {0}
    cluster_ids = set(frame.cluster_ids)
    if label_ids != cluster_ids:
        raise ClusteringError(
            f"frame {origin!r}: label ids {sorted(label_ids)} disagree with "
            f"cluster objects {sorted(cluster_ids)}"
        )
    for cluster in frame.cluster_set.clusters:
        if cluster.indices.size == 0:
            raise ClusteringError(
                f"frame {origin!r}: cluster {cluster.cluster_id} has no points"
            )
        if int(cluster.indices.max()) >= frame.n_points:
            raise ClusteringError(
                f"frame {origin!r}: cluster {cluster.cluster_id} references "
                f"point {int(cluster.indices.max())} outside the frame"
            )
    return frame


def validate_study(study: "ParametricStudy") -> "ParametricStudy":
    """Check a study definition before running it.

    Raises :class:`~repro.errors.StudyError` for unknown applications or
    malformed scenario mappings, so a typo in a config fails in
    milliseconds instead of after the first simulation.
    """
    from repro.apps.registry import APP_BUILDERS

    if not isinstance(study.app, str) or not study.app:
        raise StudyError(f"study application name must be a string, got {study.app!r}")
    if study.app not in APP_BUILDERS:
        known = ", ".join(sorted(APP_BUILDERS))
        raise StudyError(
            f"unknown application {study.app!r}; registered applications: {known}"
        )
    for index, scenario in enumerate(study.scenarios):
        if not isinstance(scenario, Mapping):
            raise StudyError(
                f"scenario #{index} of study {study.app!r} must be a mapping "
                f"of keyword arguments, got {type(scenario).__name__}"
            )
        for key in scenario:
            if not isinstance(key, str):
                raise StudyError(
                    f"scenario #{index} of study {study.app!r} has a "
                    f"non-string parameter name {key!r}"
                )
    return study
