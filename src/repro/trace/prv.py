"""Paraver trace interoperability (simplified ``.prv`` triplet).

The BSC tools the paper builds on consume Paraver traces produced by
Extrae: a ``.prv`` record file, a ``.pcf`` configuration naming event
types and values, and a ``.row`` file labelling the process hierarchy.
This module writes and reads a faithful *subset* of that format, enough
to exchange burst-level data with the real ecosystem:

- one **state record** (``1:...:begin:end:1``) per CPU burst
  (state 1 = running);
- one **event record** (``2:...:end:type:value...``) at each burst end
  carrying the hardware counters (Extrae's 42000000-range event types)
  and the call-path reference (caller-line event type);
- the ``.pcf`` names the counter events and enumerates the call-path
  values, plus a comment block with the repro metadata (application,
  scenario, clock) so a round trip loses nothing but timestamp
  precision (Paraver time is integer nanoseconds).

This is intentionally not a full Paraver implementation (no
communication records, one application, one thread per task) — exactly
the subset burst-level analysis needs.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

import numpy as np

from repro.errors import TraceFormatError
from repro.obs.log import get_logger
from repro.trace.callstack import CallPath, CallstackTable
from repro.trace.counters import CYCLES, INSTRUCTIONS, L1_DCM, L2_DCM, TLB_DM
from repro.trace.trace import Trace, TraceBuilder

__all__ = ["save_prv", "load_prv", "COUNTER_EVENT_TYPES", "CALLER_EVENT_TYPE"]

#: Extrae-convention event types for the PAPI counters we emit.
COUNTER_EVENT_TYPES: dict[str, int] = {
    INSTRUCTIONS: 42000050,
    CYCLES: 42000059,
    L1_DCM: 42000051,
    L2_DCM: 42000052,
    TLB_DM: 42000053,
}

#: Event type carrying the call-path reference (caller line id).
CALLER_EVENT_TYPE = 30000100

#: Running state id in Paraver's default semantic.
_RUNNING_STATE = 1

log = get_logger(__name__)

_NS = 1e9


def _prv_path(path: str | Path) -> Path:
    path = Path(path)
    if path.suffix != ".prv":
        path = path.with_suffix(".prv")
    return path


def _round_ns(seconds: np.ndarray) -> np.ndarray:
    """Quantise second-unit timestamps to integer nanoseconds.

    One rounding mode (round-half-even via :func:`numpy.rint`) is used
    for *every* emitted time — burst records and the header total alike
    — so no record can disagree with the header about the last
    nanosecond.
    """
    return np.rint(np.asarray(seconds, dtype=np.float64) * _NS).astype(np.int64)


def save_prv(trace: Trace, path: str | Path) -> Path:
    """Write *trace* as a Paraver triplet; returns the ``.prv`` path.

    ``path`` may omit the extension; ``.pcf`` and ``.row`` siblings are
    written next to the ``.prv``.  The header duration is the maximum of
    the emitted burst end times (same rounding pass), so every record
    time is guaranteed ``<=`` the header total.
    """
    prv = _prv_path(path)
    prv.parent.mkdir(parents=True, exist_ok=True)

    counter_types = [COUNTER_EVENT_TYPES[name] for name in trace.counter_names]
    begin_ns_all = _round_ns(trace.begin)
    end_ns_all = _round_ns(trace.end)
    total_ns = int(end_ns_all.max()) if trace.n_bursts else 0

    # Header: #Paraver (d/m/y at h:m):total:nNodes(cpus):nAppl:tasks(...)
    task_spec = ",".join(f"1:{node}" for node in range(1, trace.nranks + 1))
    header = (
        f"#Paraver (01/01/2013 at 00:00):{total_ns}_ns:"
        f"{trace.nranks}({','.join('1' for _ in range(trace.nranks))}):1:"
        f"{trace.nranks}({task_spec})"
    )

    order = np.lexsort((trace.rank, trace.begin))
    lines = [header]
    for index in order.tolist():
        rank = int(trace.rank[index]) + 1  # Paraver tasks are 1-based
        begin_ns = int(begin_ns_all[index])
        end_ns = int(end_ns_all[index])
        lines.append(
            f"1:{rank}:1:{rank}:1:{begin_ns}:{end_ns}:{_RUNNING_STATE}"
        )
        events = [
            f"{CALLER_EVENT_TYPE}:{int(trace.callpath_id[index]) + 1}"
        ]
        for col, event_type in enumerate(counter_types):
            value = int(round(float(trace.counters_matrix[index, col])))
            events.append(f"{event_type}:{value}")
        lines.append(f"2:{rank}:1:{rank}:1:{end_ns}:" + ":".join(events))
    prv.write_text("\n".join(lines) + "\n", encoding="utf-8")

    _write_pcf(trace, prv.with_suffix(".pcf"))
    _write_row(trace, prv.with_suffix(".row"))
    return prv


def _write_pcf(trace: Trace, path: Path) -> None:
    meta = {
        "app": trace.app,
        "scenario": trace.scenario,
        "clock_hz": trace.clock_hz,
        "counter_names": list(trace.counter_names),
        "nranks": trace.nranks,
    }
    lines = [
        "# repro-paraver configuration",
        f"# repro-meta: {json.dumps(meta)}",
        "",
        "EVENT_TYPE",
    ]
    for name in trace.counter_names:
        lines.append(f"0 {COUNTER_EVENT_TYPES[name]} {name}")
    lines.append("")
    lines.append("EVENT_TYPE")
    lines.append(f"0 {CALLER_EVENT_TYPE} Caller line")
    lines.append("VALUES")
    lines.append("0 End")
    for path_id, callpath in enumerate(trace.callstacks):
        lines.append(f"{path_id + 1} {callpath}")
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def _write_row(trace: Trace, path: Path) -> None:
    lines = [f"LEVEL TASK SIZE {trace.nranks}"]
    for rank in range(trace.nranks):
        lines.append(f"TASK 1.{rank + 1}")
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


_META_RE = re.compile(r"^# repro-meta: (?P<json>.*)$")
_VALUE_RE = re.compile(r"^(?P<id>\d+) (?P<label>.+)$")


def _read_pcf(path: Path) -> tuple[dict, CallstackTable]:
    if not path.exists():
        raise TraceFormatError(f"missing Paraver configuration file {path}")
    meta: dict | None = None
    values: dict[int, str] = {}
    in_caller_values = False
    saw_caller_type = False
    for line in path.read_text(encoding="utf-8", errors="replace").splitlines():
        match = _META_RE.match(line)
        if match:
            try:
                meta = json.loads(match.group("json"))
            except json.JSONDecodeError as exc:
                raise TraceFormatError(f"malformed repro-meta in {path}") from exc
            continue
        if line.startswith("EVENT_TYPE"):
            in_caller_values = False
            continue
        if str(CALLER_EVENT_TYPE) in line and "Caller line" in line:
            saw_caller_type = True
            continue
        if line.startswith("VALUES"):
            in_caller_values = saw_caller_type
            continue
        if in_caller_values:
            match = _VALUE_RE.match(line)
            if match and int(match.group("id")) > 0:
                values[int(match.group("id"))] = match.group("label")
    if meta is None:
        raise TraceFormatError(f"{path} carries no repro-meta block")
    try:
        paths = [
            CallPath.parse(values[path_id]) for path_id in sorted(values)
        ]
    except ValueError as exc:
        raise TraceFormatError(
            f"{path}: malformed caller value: {exc}"
        ) from exc
    return meta, CallstackTable(paths)


_HEADER_TOTAL_RE = re.compile(r"^#Paraver \([^)]*\):(?P<total>\d+)(?:_ns)?:")


def _parse_header_total(header: str, prv: Path) -> int | None:
    """Extract the total duration (ns) from a ``#Paraver`` header."""
    match = _HEADER_TOTAL_RE.match(header)
    if match is None:
        raise TraceFormatError(
            f"{prv}: malformed Paraver header (no total duration): {header!r}"
        )
    return int(match.group("total"))


def load_prv(path: str | Path, *, strict: bool = True) -> Trace:
    """Read a Paraver triplet written by :func:`save_prv`.

    Timestamps come back at nanosecond precision; counters as integers.
    The built trace is validated against the structural invariants
    (:func:`repro.robust.validate_trace`): with ``strict=True`` (the
    default) a malformed trace raises
    :class:`~repro.errors.TraceError` / :class:`TraceFormatError`; with
    ``strict=False`` repairable defects (NaN counters, duplicated
    bursts, record times past the header duration) are dropped with a
    warning instead.
    """
    from repro.robust.validate import validate_trace

    prv = _prv_path(path)
    if not prv.exists():
        raise TraceFormatError(f"missing Paraver trace {prv}")
    meta, callstacks = _read_pcf(prv.with_suffix(".pcf"))

    try:
        counter_names = tuple(str(name) for name in meta["counter_names"])
        nranks = int(meta["nranks"])
        app = str(meta["app"])
        scenario = dict(meta.get("scenario", {}))
        clock_hz = float(meta.get("clock_hz", 1e9))
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceFormatError(
            f"{prv}: malformed repro-meta block: {exc}"
        ) from exc
    unknown = [name for name in counter_names if name not in COUNTER_EVENT_TYPES]
    if unknown:
        raise TraceFormatError(
            f"{prv}: repro-meta names unknown counter(s) {unknown}; "
            f"supported: {sorted(COUNTER_EVENT_TYPES)}"
        )
    type_to_column = {
        COUNTER_EVENT_TYPES[name]: col for col, name in enumerate(counter_names)
    }
    builder = TraceBuilder(
        nranks=nranks,
        counter_names=counter_names,
        app=app,
        scenario=scenario,
        clock_hz=clock_hz,
    )
    paths = list(callstacks)

    # First pass: collect state records, then attach the event records
    # fired at each burst's end time.  Multiple bursts of one task may
    # round to the same end nanosecond, so each key holds a FIFO queue.
    states: dict[tuple[int, int], list[tuple[float, float]]] = {}
    pending: list[tuple[int, int, dict[int, int]]] = []
    lines = prv.read_text(encoding="utf-8", errors="replace").splitlines()
    if not lines or not lines[0].startswith("#Paraver"):
        raise TraceFormatError(f"{prv} is not a Paraver trace")
    total_ns = _parse_header_total(lines[0], prv)
    overran: int = 0
    malformed: int = 0
    for line in lines[1:]:
        if not line.strip():
            continue
        fields = line.split(":")
        try:
            record = int(fields[0])
            if record == 1:
                task = int(fields[3]) - 1
                begin_ns = int(fields[5])
                end_ns = int(fields[6])
                if not 0 <= task < nranks:
                    raise ValueError(f"task {task + 1} outside 1..{nranks}")
                if end_ns < begin_ns:
                    raise ValueError("state record ends before it begins")
                if end_ns > total_ns:
                    overran += 1
                    if strict:
                        raise TraceFormatError(
                            f"{prv}: state record ends at {end_ns} ns, past "
                            f"the header duration of {total_ns} ns: {line!r}"
                        )
                    continue  # non-strict: drop the overrunning burst
                states.setdefault((task, end_ns), []).append(
                    (begin_ns / _NS, (end_ns - begin_ns) / _NS)
                )
            elif record == 2:
                task = int(fields[3]) - 1
                time_ns = int(fields[5])
                if len(fields) < 8 or len(fields) % 2 != 0:
                    raise ValueError("event record carries a dangling field")
                events = {
                    int(fields[i]): int(fields[i + 1])
                    for i in range(6, len(fields) - 1, 2)
                }
                pending.append((task, time_ns, events))
        except TraceFormatError:
            raise
        except (ValueError, IndexError) as exc:
            if strict:
                raise TraceFormatError(
                    f"{prv}: malformed Paraver record: {line!r} ({exc})"
                ) from exc
            malformed += 1  # non-strict: truncated/garbled line, drop it
    if malformed:
        log.warning(
            "%s: dropped %d unparseable record line(s) (non-strict)",
            prv, malformed,
        )
    if overran:
        log.warning(
            "%s: dropped %d state record(s) past the header duration "
            "(non-strict)", prv, overran,
        )

    orphaned = 0
    for task, time_ns, events in pending:
        queue = states.get((task, time_ns))
        if not queue:
            if strict:
                raise TraceFormatError(
                    f"{prv}: event at t={time_ns} for task {task + 1} has "
                    "no matching state record"
                )
            orphaned += 1
            continue
        begin, duration = queue.pop(0)
        caller = events.get(CALLER_EVENT_TYPE)
        if caller is None or not 1 <= caller <= len(paths):
            if strict:
                raise TraceFormatError(
                    f"{prv}: event at t={time_ns} lacks a valid caller reference"
                )
            orphaned += 1  # non-strict: drop the burst with the broken caller
            continue
        counters = [0.0] * len(counter_names)
        for event_type, value in events.items():
            column = type_to_column.get(event_type)
            if column is not None:
                counters[column] = float(value)
        builder.add(
            rank=task,
            begin=begin,
            duration=duration,
            callpath=paths[caller - 1],
            counters=counters,
        )
    if orphaned:
        log.warning(
            "%s: dropped %d event record(s) without a matching state "
            "(non-strict)", prv, orphaned,
        )
    return validate_trace(builder.build(), strict=strict, where=str(prv))
