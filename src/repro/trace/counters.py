"""Hardware-counter names and derived performance metrics.

The counter naming follows the PAPI preset convention used by Extrae at
BSC, since those are the names that appear in the traces the paper's
tool consumes.  A *derived metric* is any per-burst quantity computed
from raw counters and burst duration — e.g. IPC, or misses per thousand
instructions (MPKI).  Derived metrics are registered in
:data:`DERIVED_METRICS` so that frames can be built over any pair of
axis names without special-casing.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.trace.trace import Trace

__all__ = [
    "INSTRUCTIONS",
    "CYCLES",
    "L1_DCM",
    "L2_DCM",
    "TLB_DM",
    "STANDARD_COUNTERS",
    "DERIVED_METRICS",
    "derived_metric_names",
    "register_metric",
    "metric_values",
    "is_extensive_metric",
]

#: Completed instructions (PAPI preset name).
INSTRUCTIONS = "PAPI_TOT_INS"
#: Total cycles.
CYCLES = "PAPI_TOT_CYC"
#: Level-1 data-cache misses.
L1_DCM = "PAPI_L1_DCM"
#: Level-2 data-cache misses.
L2_DCM = "PAPI_L2_DCM"
#: Data TLB misses.
TLB_DM = "PAPI_TLB_DM"

#: The counter set the synthetic runner emits, mirroring a typical
#: Extrae configuration on the paper's machines.
STANDARD_COUNTERS: tuple[str, ...] = (INSTRUCTIONS, CYCLES, L1_DCM, L2_DCM, TLB_DM)

MetricFn = Callable[["Trace"], np.ndarray]


def _safe_div(num: np.ndarray, den: np.ndarray) -> np.ndarray:
    """Element-wise division returning 0 where the denominator is 0."""
    out = np.zeros_like(num, dtype=np.float64)
    np.divide(num, den, out=out, where=den != 0)
    return out


def _ipc(trace: "Trace") -> np.ndarray:
    return _safe_div(trace.counter(INSTRUCTIONS), trace.counter(CYCLES))


def _mpki(counter_name: str) -> MetricFn:
    def metric(trace: "Trace") -> np.ndarray:
        return 1000.0 * _safe_div(trace.counter(counter_name), trace.counter(INSTRUCTIONS))

    return metric


def _duration(trace: "Trace") -> np.ndarray:
    return trace.duration.astype(np.float64, copy=True)


def _instructions(trace: "Trace") -> np.ndarray:
    return trace.counter(INSTRUCTIONS).astype(np.float64, copy=True)


def _cycles(trace: "Trace") -> np.ndarray:
    return trace.counter(CYCLES).astype(np.float64, copy=True)


def _mips(trace: "Trace") -> np.ndarray:
    return 1e-6 * _safe_div(trace.counter(INSTRUCTIONS), trace.duration)


#: Registry of derived metrics, keyed by the short names the rest of the
#: package (frames, trends, plots) uses on its axes.
DERIVED_METRICS: dict[str, MetricFn] = {
    "ipc": _ipc,
    "instructions": _instructions,
    "cycles": _cycles,
    "duration": _duration,
    "mips": _mips,
    "l1_misses": lambda t: t.counter(L1_DCM).astype(np.float64, copy=True),
    "l2_misses": lambda t: t.counter(L2_DCM).astype(np.float64, copy=True),
    "tlb_misses": lambda t: t.counter(TLB_DM).astype(np.float64, copy=True),
    "l1_mpki": _mpki(L1_DCM),
    "l2_mpki": _mpki(L2_DCM),
    "tlb_mpki": _mpki(TLB_DM),
}

#: Metrics whose per-burst magnitude scales with how the total work is
#: divided among processes.  When the process count doubles, these halve
#: per burst; the cross-frame scale normalisation weights them by the
#: core count (paper section 2).  Intensive metrics (ratios such as IPC
#: or MPKI) are min-max scaled instead.
_EXTENSIVE_METRICS = frozenset(
    {"instructions", "cycles", "duration", "l1_misses", "l2_misses", "tlb_misses"}
)


def is_extensive_metric(name: str) -> bool:
    """Return whether *name* scales with the per-process share of work.

    Raw counter names (e.g. ``PAPI_TOT_INS``) are always extensive;
    derived ratio metrics (``ipc``, ``*_mpki``, ``mips``) are intensive.
    """
    if name in _EXTENSIVE_METRICS:
        return True
    if name in DERIVED_METRICS:
        return False
    # Unknown names are raw counters: event counts are extensive.
    return True


def register_metric(name: str, fn: MetricFn, *, extensive: bool = False) -> None:
    """Register a user-defined derived metric.

    Parameters
    ----------
    name:
        Axis name under which the metric becomes available.
    fn:
        Callable mapping a :class:`~repro.trace.trace.Trace` to a float64
        array with one value per burst.
    extensive:
        Whether the metric scales with the per-process work share (see
        :func:`is_extensive_metric`).
    """
    if name in DERIVED_METRICS:
        raise ValueError(f"metric {name!r} is already registered")
    DERIVED_METRICS[name] = fn
    if extensive:
        global _EXTENSIVE_METRICS
        _EXTENSIVE_METRICS = _EXTENSIVE_METRICS | {name}


def derived_metric_names() -> tuple[str, ...]:
    """Return the names of all registered derived metrics."""
    return tuple(DERIVED_METRICS)


def metric_values(trace: "Trace", name: str) -> np.ndarray:
    """Evaluate metric *name* on *trace*, one float64 value per burst.

    *name* may be a derived metric (``"ipc"``) or a raw counter name
    (``"PAPI_TOT_INS"``).
    """
    if name in DERIVED_METRICS:
        return DERIVED_METRICS[name](trace)
    if name in trace.counter_names:
        return trace.counter(name).astype(np.float64, copy=True)
    raise KeyError(
        f"unknown metric {name!r}; available derived metrics: "
        f"{sorted(DERIVED_METRICS)}; trace counters: {list(trace.counter_names)}"
    )


def standard_counter_index(name: str) -> int:
    """Return the position of *name* within :data:`STANDARD_COUNTERS`."""
    try:
        return STANDARD_COUNTERS.index(name)
    except ValueError as exc:
        raise KeyError(f"{name!r} is not a standard counter") from exc
