"""Burst selection filters.

The BSC workflow the paper builds on discards negligible bursts before
clustering: very short computations are instrumentation noise and would
otherwise dominate the point population while representing a sliver of
the execution time.  :func:`filter_top_duration_fraction` mirrors the
"clusters that represent a high percentage of the application time"
relevance criterion from the paper's section 4.
"""

from __future__ import annotations

import numpy as np

from repro.trace.trace import Trace

__all__ = [
    "filter_min_duration",
    "filter_top_duration_fraction",
    "filter_ranks",
    "filter_time_window",
]


def filter_min_duration(trace: Trace, min_duration: float) -> Trace:
    """Keep only bursts lasting at least *min_duration* seconds."""
    if min_duration < 0:
        raise ValueError(f"min_duration must be >= 0, got {min_duration}")
    return trace.select(trace.duration >= min_duration)


def filter_top_duration_fraction(trace: Trace, fraction: float) -> Trace:
    """Keep the longest bursts that together cover *fraction* of total time.

    Bursts are ranked by duration (descending) and retained until their
    cumulative duration reaches ``fraction * total_time``.  The burst
    that crosses the threshold is included, so coverage is always at
    least the requested fraction (when the trace is non-empty).
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    if trace.n_bursts == 0:
        return trace
    order = np.argsort(trace.duration)[::-1]
    cumulative = np.cumsum(trace.duration[order])
    target = fraction * cumulative[-1]
    cutoff = int(np.searchsorted(cumulative, target)) + 1
    keep = np.zeros(trace.n_bursts, dtype=bool)
    keep[order[:cutoff]] = True
    return trace.select(keep)


def filter_ranks(trace: Trace, ranks: np.ndarray | list[int]) -> Trace:
    """Keep only bursts executed by the given ranks."""
    return trace.select(np.isin(trace.rank, np.asarray(ranks)))


def filter_time_window(trace: Trace, begin: float, end: float) -> Trace:
    """Keep bursts that start within ``[begin, end)`` seconds.

    Useful for the paper's *evolutionary* use case: splitting one long
    experiment into time intervals and tracking across the intervals.
    """
    if end <= begin:
        raise ValueError(f"empty time window [{begin}, {end})")
    return trace.select((trace.begin >= begin) & (trace.begin < end))
