"""Per-trace summary statistics.

These aggregations power the textual reports (Table 3 style) and are
handy for sanity-checking synthetic traces against their app models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.trace.counters import CYCLES, INSTRUCTIONS
from repro.trace.trace import Trace

__all__ = ["TraceSummary", "summarize", "per_rank_totals", "per_callpath_totals"]


@dataclass(frozen=True, slots=True)
class TraceSummary:
    """Aggregate view of one trace.

    Attributes
    ----------
    n_bursts:
        Burst count.
    total_duration:
        Sum of burst durations (CPU seconds across all ranks).
    makespan:
        Wall-clock span of the trace.
    total_instructions, total_cycles:
        Counter totals across all bursts.
    mean_ipc:
        Instruction-weighted mean IPC (total instructions over total
        cycles), the aggregate the paper's tables report.
    per_callpath_duration:
        Mapping of call-path short name to total duration.
    """

    n_bursts: int
    total_duration: float
    makespan: float
    total_instructions: float
    total_cycles: float
    mean_ipc: float
    per_callpath_duration: dict[str, float] = field(default_factory=dict)


def summarize(trace: Trace) -> TraceSummary:
    """Compute a :class:`TraceSummary` for *trace*."""
    instructions = float(trace.counter(INSTRUCTIONS).sum()) if trace.n_bursts else 0.0
    cycles = float(trace.counter(CYCLES).sum()) if trace.n_bursts else 0.0
    return TraceSummary(
        n_bursts=trace.n_bursts,
        total_duration=trace.total_time,
        makespan=trace.makespan,
        total_instructions=instructions,
        total_cycles=cycles,
        mean_ipc=instructions / cycles if cycles else 0.0,
        per_callpath_duration=per_callpath_totals(trace),
    )


def per_rank_totals(trace: Trace, metric: str = "duration") -> np.ndarray:
    """Sum *metric* per rank; returns an array of length ``trace.nranks``."""
    values = trace.metric(metric)
    totals = np.zeros(trace.nranks, dtype=np.float64)
    np.add.at(totals, trace.rank, values)
    return totals


def per_callpath_totals(trace: Trace, metric: str = "duration") -> dict[str, float]:
    """Sum *metric* per call path, keyed by the path's short name."""
    values = trace.metric(metric)
    totals: dict[str, float] = {}
    if trace.n_bursts == 0:
        return totals
    sums = np.zeros(len(trace.callstacks), dtype=np.float64)
    np.add.at(sums, trace.callpath_id, values)
    for path_id, total in enumerate(sums):
        if total:
            totals[trace.callstacks.path(path_id).short()] = float(total)
    return totals
