"""Call-path model: linking bursts to points in the source code.

Every CPU burst records where in the code it started, as a stack of
``(function, file, line)`` frames.  The tracking algorithm's third
heuristic (*call stack references*, paper section 3.3) compares these
references between clusters of different experiments: two objects that
share no reference cannot be the same region of code.

Call paths are interned through :class:`CallstackTable`, so a trace
stores one small integer per burst instead of a tuple of strings.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass

__all__ = ["StackFrame", "CallPath", "CallstackTable"]


@dataclass(frozen=True, slots=True)
class StackFrame:
    """One level of a call stack: a source location.

    Attributes
    ----------
    function:
        Routine name, e.g. ``"solve_x"``.
    file:
        Source file, e.g. ``"module_comm_dm.f90"``.
    line:
        Line number of the call site or region entry.
    """

    function: str
    file: str
    line: int

    def __post_init__(self) -> None:
        if self.line < 0:
            raise ValueError(f"line must be >= 0, got {self.line}")

    def __str__(self) -> str:
        return f"{self.function}@{self.file}:{self.line}"

    @classmethod
    def parse(cls, text: str) -> "StackFrame":
        """Parse the ``function@file:line`` form produced by ``str()``."""
        try:
            function, location = text.split("@", 1)
            file, line = location.rsplit(":", 1)
            return cls(function=function, file=file, line=int(line))
        except ValueError as exc:
            raise ValueError(f"cannot parse stack frame {text!r}") from exc


@dataclass(frozen=True, slots=True)
class CallPath:
    """An ordered call stack, outermost frame first.

    The *leaf* (innermost frame) is the reference the paper's tables use
    to identify a region (e.g. ``6474 (module_comm_dm.f90)``).
    """

    frames: tuple[StackFrame, ...]

    def __post_init__(self) -> None:
        if not self.frames:
            raise ValueError("a call path needs at least one frame")

    @property
    def leaf(self) -> StackFrame:
        """Innermost frame: the code region the burst executes."""
        return self.frames[-1]

    @property
    def depth(self) -> int:
        """Number of stack frames."""
        return len(self.frames)

    def __iter__(self) -> Iterator[StackFrame]:
        return iter(self.frames)

    def __str__(self) -> str:
        return " > ".join(str(frame) for frame in self.frames)

    def short(self) -> str:
        """Compact human-readable form: ``line (file)`` of the leaf."""
        return f"{self.leaf.line} ({self.leaf.file})"

    @classmethod
    def single(cls, function: str, file: str, line: int) -> "CallPath":
        """Build a depth-1 call path."""
        return cls(frames=(StackFrame(function, file, line),))

    @classmethod
    def of(cls, *frames: StackFrame) -> "CallPath":
        """Build a call path from frames, outermost first."""
        return cls(frames=tuple(frames))

    @classmethod
    def parse(cls, text: str) -> "CallPath":
        """Parse the ``frame > frame > ...`` form produced by ``str()``."""
        parts = [part.strip() for part in text.split(">")]
        return cls(frames=tuple(StackFrame.parse(part) for part in parts))


class CallstackTable:
    """Bidirectional interning table of :class:`CallPath` objects.

    Traces store the small integer id; the table recovers the full path.
    Ids are dense, starting at 0, in first-seen order, which keeps the
    serialized form stable and compact.
    """

    def __init__(self, paths: Iterable[CallPath] = ()) -> None:
        self._paths: list[CallPath] = []
        self._ids: dict[CallPath, int] = {}
        for path in paths:
            self.intern(path)

    def intern(self, path: CallPath) -> int:
        """Return the id of *path*, registering it on first use."""
        existing = self._ids.get(path)
        if existing is not None:
            return existing
        new_id = len(self._paths)
        self._paths.append(path)
        self._ids[path] = new_id
        return new_id

    def path(self, path_id: int) -> CallPath:
        """Return the call path registered under *path_id*."""
        try:
            return self._paths[path_id]
        except IndexError as exc:
            raise KeyError(f"unknown call path id {path_id}") from exc

    def id_of(self, path: CallPath) -> int:
        """Return the id of an already-interned path."""
        try:
            return self._ids[path]
        except KeyError as exc:
            raise KeyError(f"call path {path} is not interned") from exc

    def __len__(self) -> int:
        return len(self._paths)

    def __iter__(self) -> Iterator[CallPath]:
        return iter(self._paths)

    def __contains__(self, path: CallPath) -> bool:
        return path in self._ids

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CallstackTable):
            return NotImplemented
        return self._paths == other._paths

    def to_strings(self) -> list[str]:
        """Serialize as a list of parseable strings, index = id."""
        return [str(path) for path in self._paths]

    @classmethod
    def from_strings(cls, texts: Iterable[str]) -> "CallstackTable":
        """Rebuild a table from :meth:`to_strings` output."""
        return cls(CallPath.parse(text) for text in texts)
