"""The :class:`Trace` container: every CPU burst of one experiment.

A trace is immutable once built.  Storage is struct-of-arrays: parallel
NumPy columns for rank, begin time, duration, call-path id, plus a
``(n_bursts, n_counters)`` matrix of hardware counters.  This layout
makes clustering, frame construction and trend extraction vectorised
end to end — the idiom the HPC-Python guides recommend (views over
copies, no per-record Python loops on hot paths).

Use :class:`TraceBuilder` for incremental construction (the synthetic
application runner appends millions of bursts through it) and
:meth:`Trace.from_bursts` for small literal traces in tests.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence
from typing import Any

import numpy as np

from repro.errors import TraceError
from repro.trace.burst import CPUBurst
from repro.trace.callstack import CallPath, CallstackTable
from repro.trace.counters import STANDARD_COUNTERS, metric_values

__all__ = ["Trace", "TraceBuilder"]


class Trace:
    """Immutable set of CPU bursts plus experiment metadata.

    Parameters
    ----------
    rank, begin, duration, callpath_id:
        Parallel 1-D columns, one entry per burst.
    counters:
        ``(n_bursts, len(counter_names))`` float64 matrix.
    counter_names:
        Column names of *counters*.
    callstacks:
        Interning table resolving ``callpath_id`` values.
    nranks:
        Number of MPI processes of the experiment (may exceed the number
        of distinct ranks appearing in the columns if some ranks emitted
        no bursts).
    app:
        Application name, e.g. ``"WRF"``.
    scenario:
        Free-form experiment parameters (compiler, problem class, tasks
        per node...).  Used to label frames.
    clock_hz:
        Nominal core clock of the machine the trace was captured on.
    """

    __slots__ = (
        "_rank",
        "_begin",
        "_duration",
        "_callpath_id",
        "_counters",
        "counter_names",
        "callstacks",
        "nranks",
        "app",
        "scenario",
        "clock_hz",
    )

    def __init__(
        self,
        *,
        rank: np.ndarray,
        begin: np.ndarray,
        duration: np.ndarray,
        callpath_id: np.ndarray,
        counters: np.ndarray,
        counter_names: Sequence[str] = STANDARD_COUNTERS,
        callstacks: CallstackTable,
        nranks: int,
        app: str = "unknown",
        scenario: Mapping[str, Any] | None = None,
        clock_hz: float = 1e9,
    ) -> None:
        rank = np.asarray(rank, dtype=np.int32)
        begin = np.asarray(begin, dtype=np.float64)
        duration = np.asarray(duration, dtype=np.float64)
        callpath_id = np.asarray(callpath_id, dtype=np.int32)
        counters = np.atleast_2d(np.asarray(counters, dtype=np.float64))
        n = rank.shape[0]
        if counters.size == 0:
            counters = counters.reshape(n, len(counter_names)) if n == 0 else counters
        for name, col in (
            ("begin", begin),
            ("duration", duration),
            ("callpath_id", callpath_id),
        ):
            if col.shape != (n,):
                raise TraceError(
                    f"column {name!r} has shape {col.shape}, expected ({n},)"
                )
        if counters.shape != (n, len(counter_names)):
            raise TraceError(
                f"counters matrix has shape {counters.shape}, expected "
                f"({n}, {len(counter_names)})"
            )
        if nranks <= 0:
            raise TraceError(f"nranks must be > 0, got {nranks}")
        if n and (rank.min() < 0 or rank.max() >= nranks):
            raise TraceError(
                f"ranks must lie in [0, {nranks}), got range "
                f"[{rank.min()}, {rank.max()}]"
            )
        if n and duration.min() < 0:
            raise TraceError("durations must be >= 0")
        if n and callpath_id.size and (
            callpath_id.min() < 0 or callpath_id.max() >= len(callstacks)
        ):
            raise TraceError("callpath ids out of range of the callstack table")
        if clock_hz <= 0:
            raise TraceError(f"clock_hz must be > 0, got {clock_hz}")

        self._rank = rank
        self._begin = begin
        self._duration = duration
        self._callpath_id = callpath_id
        self._counters = counters
        self.counter_names = tuple(counter_names)
        self.callstacks = callstacks
        self.nranks = int(nranks)
        self.app = app
        self.scenario: dict[str, Any] = dict(scenario or {})
        self.clock_hz = float(clock_hz)
        for arr in (self._rank, self._begin, self._duration, self._callpath_id, self._counters):
            arr.setflags(write=False)

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def n_bursts(self) -> int:
        """Number of bursts in the trace."""
        return int(self._rank.shape[0])

    def __len__(self) -> int:
        return self.n_bursts

    @property
    def rank(self) -> np.ndarray:
        """Per-burst MPI rank column (read-only)."""
        return self._rank

    @property
    def begin(self) -> np.ndarray:
        """Per-burst start timestamps in seconds (read-only)."""
        return self._begin

    @property
    def duration(self) -> np.ndarray:
        """Per-burst durations in seconds (read-only)."""
        return self._duration

    @property
    def end(self) -> np.ndarray:
        """Per-burst end timestamps in seconds."""
        return self._begin + self._duration

    @property
    def callpath_id(self) -> np.ndarray:
        """Per-burst call-path ids (read-only)."""
        return self._callpath_id

    @property
    def counters_matrix(self) -> np.ndarray:
        """The raw ``(n_bursts, n_counters)`` counter matrix (read-only)."""
        return self._counters

    @property
    def total_time(self) -> float:
        """Sum of all burst durations in seconds (CPU time, not makespan)."""
        return float(self._duration.sum())

    @property
    def makespan(self) -> float:
        """Wall-clock span from first burst begin to last burst end."""
        if self.n_bursts == 0:
            return 0.0
        return float(self.end.max() - self._begin.min())

    def counter(self, name: str) -> np.ndarray:
        """Return the column of counter *name* (a read-only view)."""
        try:
            idx = self.counter_names.index(name)
        except ValueError as exc:
            raise KeyError(
                f"trace has no counter {name!r}; available: {list(self.counter_names)}"
            ) from exc
        return self._counters[:, idx]

    def metric(self, name: str) -> np.ndarray:
        """Evaluate derived metric or raw counter *name* per burst."""
        return metric_values(self, name)

    def label(self) -> str:
        """Short human-readable experiment label built from the scenario."""
        if not self.scenario:
            return self.app
        parts = ", ".join(f"{key}={value}" for key, value in sorted(self.scenario.items()))
        return f"{self.app}({parts})"

    def __repr__(self) -> str:
        return (
            f"Trace(app={self.app!r}, nranks={self.nranks}, "
            f"n_bursts={self.n_bursts}, scenario={self.scenario!r})"
        )

    # ------------------------------------------------------------------
    # selection / iteration
    # ------------------------------------------------------------------
    def select(self, mask: np.ndarray) -> "Trace":
        """Return a new trace containing only bursts where *mask* is true.

        Metadata (app, scenario, counter names, callstack table, nranks)
        is preserved; the callstack table is shared, not copied.
        """
        mask = np.asarray(mask)
        if mask.dtype == bool:
            if mask.shape != (self.n_bursts,):
                raise TraceError(
                    f"boolean mask has shape {mask.shape}, expected ({self.n_bursts},)"
                )
        return Trace(
            rank=self._rank[mask],
            begin=self._begin[mask],
            duration=self._duration[mask],
            callpath_id=self._callpath_id[mask],
            counters=self._counters[mask],
            counter_names=self.counter_names,
            callstacks=self.callstacks,
            nranks=self.nranks,
            app=self.app,
            scenario=self.scenario,
            clock_hz=self.clock_hz,
        )

    def sorted_by_time(self) -> "Trace":
        """Return a copy with bursts ordered by (begin, rank)."""
        order = np.lexsort((self._rank, self._begin))
        return self.select(order)

    def ranks_present(self) -> np.ndarray:
        """Sorted array of ranks that emitted at least one burst."""
        return np.unique(self._rank)

    def bursts_of_rank(self, rank: int) -> "Trace":
        """Sub-trace containing only the bursts of *rank*, time-ordered."""
        sub = self.select(self._rank == rank)
        order = np.argsort(sub._begin, kind="stable")
        return sub.select(order)

    def burst(self, index: int) -> CPUBurst:
        """Materialise burst *index* as a :class:`CPUBurst` record."""
        if not 0 <= index < self.n_bursts:
            raise IndexError(f"burst index {index} out of range [0, {self.n_bursts})")
        return CPUBurst(
            rank=int(self._rank[index]),
            begin=float(self._begin[index]),
            duration=float(self._duration[index]),
            callpath=self.callstacks.path(int(self._callpath_id[index])),
            counters={
                name: float(self._counters[index, i])
                for i, name in enumerate(self.counter_names)
            },
        )

    def bursts(self) -> Iterator[CPUBurst]:
        """Iterate over all bursts as records (slow path — use columns in hot code)."""
        for index in range(self.n_bursts):
            yield self.burst(index)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_bursts(
        cls,
        bursts: Iterable[CPUBurst],
        *,
        nranks: int,
        counter_names: Sequence[str] = STANDARD_COUNTERS,
        app: str = "unknown",
        scenario: Mapping[str, Any] | None = None,
        clock_hz: float = 1e9,
    ) -> "Trace":
        """Build a trace from burst records (test/API convenience path)."""
        builder = TraceBuilder(
            nranks=nranks,
            counter_names=counter_names,
            app=app,
            scenario=scenario,
            clock_hz=clock_hz,
        )
        for burst in bursts:
            builder.add(
                rank=burst.rank,
                begin=burst.begin,
                duration=burst.duration,
                callpath=burst.callpath,
                counters=[burst.counters.get(name, 0.0) for name in counter_names],
            )
        return builder.build()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return (
            self.app == other.app
            and self.nranks == other.nranks
            and self.scenario == other.scenario
            and self.counter_names == other.counter_names
            and self.clock_hz == other.clock_hz
            and self.callstacks == other.callstacks
            and np.array_equal(self._rank, other._rank)
            and np.allclose(self._begin, other._begin)
            and np.allclose(self._duration, other._duration)
            and np.array_equal(self._callpath_id, other._callpath_id)
            and np.allclose(self._counters, other._counters)
        )


class TraceBuilder:
    """Incremental, append-only constructor of :class:`Trace` objects.

    Appends go to Python lists and are converted to columns once at
    :meth:`build` time, which is far cheaper than growing NumPy arrays.
    """

    def __init__(
        self,
        *,
        nranks: int,
        counter_names: Sequence[str] = STANDARD_COUNTERS,
        app: str = "unknown",
        scenario: Mapping[str, Any] | None = None,
        clock_hz: float = 1e9,
    ) -> None:
        if nranks <= 0:
            raise TraceError(f"nranks must be > 0, got {nranks}")
        self.nranks = int(nranks)
        self.counter_names = tuple(counter_names)
        self.app = app
        self.scenario = dict(scenario or {})
        self.clock_hz = float(clock_hz)
        self.callstacks = CallstackTable()
        self._rank: list[int] = []
        self._begin: list[float] = []
        self._duration: list[float] = []
        self._callpath_id: list[int] = []
        self._counters: list[Sequence[float]] = []

    def add(
        self,
        *,
        rank: int,
        begin: float,
        duration: float,
        callpath: CallPath,
        counters: Sequence[float],
    ) -> None:
        """Append one burst; *counters* follows ``counter_names`` order."""
        if len(counters) != len(self.counter_names):
            raise TraceError(
                f"expected {len(self.counter_names)} counter values, got {len(counters)}"
            )
        self._rank.append(rank)
        self._begin.append(begin)
        self._duration.append(duration)
        self._callpath_id.append(self.callstacks.intern(callpath))
        self._counters.append(tuple(counters))

    def add_block(
        self,
        *,
        rank: np.ndarray,
        begin: np.ndarray,
        duration: np.ndarray,
        callpath: CallPath,
        counters: np.ndarray,
    ) -> None:
        """Append a block of bursts sharing one call path (vectorised).

        *counters* must have shape ``(len(rank), n_counters)``.
        """
        rank = np.asarray(rank)
        counters = np.asarray(counters, dtype=np.float64)
        if counters.shape != (rank.shape[0], len(self.counter_names)):
            raise TraceError(
                f"counters block shape {counters.shape} does not match "
                f"({rank.shape[0]}, {len(self.counter_names)})"
            )
        path_id = self.callstacks.intern(callpath)
        self._rank.extend(int(r) for r in rank)
        self._begin.extend(float(b) for b in np.asarray(begin))
        self._duration.extend(float(d) for d in np.asarray(duration))
        self._callpath_id.extend([path_id] * rank.shape[0])
        self._counters.extend(map(tuple, counters))

    def __len__(self) -> int:
        return len(self._rank)

    def build(self) -> Trace:
        """Finalize and return the immutable :class:`Trace`."""
        n = len(self._rank)
        counters = (
            np.asarray(self._counters, dtype=np.float64)
            if n
            else np.empty((0, len(self.counter_names)))
        )
        return Trace(
            rank=np.asarray(self._rank, dtype=np.int32),
            begin=np.asarray(self._begin, dtype=np.float64),
            duration=np.asarray(self._duration, dtype=np.float64),
            callpath_id=np.asarray(self._callpath_id, dtype=np.int32),
            counters=counters.reshape(n, len(self.counter_names)),
            counter_names=self.counter_names,
            callstacks=self.callstacks,
            nranks=self.nranks,
            app=self.app,
            scenario=self.scenario,
            clock_hz=self.clock_hz,
        )
