"""The CPU-burst record.

A CPU burst is the unit of behaviour the paper analyses: the sequential
computation a process performs between two consecutive calls into the
parallel runtime (MPI in all the paper's experiments).  Bursts are what
gets clustered into objects and tracked across experiments.

:class:`CPUBurst` is the array-of-structs view used at API boundaries
and in tests; bulk storage lives in :class:`~repro.trace.trace.Trace`
as struct-of-arrays columns for vectorised analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

from repro.trace.callstack import CallPath

__all__ = ["CPUBurst"]


@dataclass(frozen=True, slots=True)
class CPUBurst:
    """One sequential computation region of one MPI process.

    Attributes
    ----------
    rank:
        MPI rank that executed the burst.
    begin:
        Start timestamp in seconds since the start of the run.
    duration:
        Elapsed time of the burst in seconds.
    callpath:
        Call stack at burst entry, linking the burst to source code.
    counters:
        Hardware-counter values accumulated over the burst, keyed by
        counter name (see :mod:`repro.trace.counters`).
    """

    rank: int
    begin: float
    duration: float
    callpath: CallPath
    counters: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"rank must be >= 0, got {self.rank}")
        if self.begin < 0:
            raise ValueError(f"begin must be >= 0, got {self.begin}")
        if self.duration < 0:
            raise ValueError(f"duration must be >= 0, got {self.duration}")
        # Freeze the mapping so the record is genuinely immutable.
        object.__setattr__(self, "counters", MappingProxyType(dict(self.counters)))

    @property
    def end(self) -> float:
        """End timestamp in seconds."""
        return self.begin + self.duration

    def counter(self, name: str) -> float:
        """Return counter *name*, or raise ``KeyError`` with context."""
        try:
            return self.counters[name]
        except KeyError as exc:
            raise KeyError(
                f"burst has no counter {name!r}; available: {sorted(self.counters)}"
            ) from exc

    @property
    def ipc(self) -> float:
        """Instructions per cycle of the burst (0 when cycles are 0)."""
        from repro.trace.counters import CYCLES, INSTRUCTIONS

        cycles = self.counters.get(CYCLES, 0.0)
        if cycles == 0:
            return 0.0
        return self.counters.get(INSTRUCTIONS, 0.0) / cycles

    def __repr__(self) -> str:  # keep the default repr short and useful
        return (
            f"CPUBurst(rank={self.rank}, begin={self.begin:.6f}, "
            f"duration={self.duration:.6f}, callpath={self.callpath.short()!r}, "
            f"ipc={self.ipc:.3f})"
        )
