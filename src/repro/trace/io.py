"""Trace persistence: a compact JSON column format and a flat CSV form.

The JSON format stores the struct-of-arrays columns directly, which
round-trips exactly and loads fast.  The CSV format is one row per
burst with metadata in ``#``-prefixed header comments — convenient for
inspection with standard tools.  :func:`save_trace` / :func:`load_trace`
dispatch on the file extension (``.json`` / ``.csv``; a ``.gz`` suffix
adds transparent gzip compression).
"""

from __future__ import annotations

import csv
import gzip
import io
import json
from pathlib import Path
from typing import Any, TextIO

import numpy as np

from repro.errors import TraceFormatError
from repro.trace.callstack import CallstackTable
from repro.trace.trace import Trace, TraceBuilder

__all__ = ["save_trace", "load_trace", "trace_to_json", "trace_from_json"]

_FORMAT_VERSION = 1


def trace_to_json(trace: Trace) -> dict[str, Any]:
    """Serialize a trace to a JSON-compatible dict (column layout)."""
    return {
        "format": "repro-trace",
        "version": _FORMAT_VERSION,
        "app": trace.app,
        "nranks": trace.nranks,
        "scenario": trace.scenario,
        "clock_hz": trace.clock_hz,
        "counter_names": list(trace.counter_names),
        "callstacks": trace.callstacks.to_strings(),
        "columns": {
            "rank": trace.rank.tolist(),
            "begin": trace.begin.tolist(),
            "duration": trace.duration.tolist(),
            "callpath_id": trace.callpath_id.tolist(),
            "counters": trace.counters_matrix.tolist(),
        },
    }


def trace_from_json(doc: dict[str, Any]) -> Trace:
    """Rebuild a trace from :func:`trace_to_json` output."""
    try:
        if doc.get("format") != "repro-trace":
            raise TraceFormatError(
                f"not a repro trace document (format={doc.get('format')!r})"
            )
        if doc.get("version") != _FORMAT_VERSION:
            raise TraceFormatError(
                f"unsupported trace format version {doc.get('version')!r}"
            )
        columns = doc["columns"]
        n = len(columns["rank"])
        counters = np.asarray(columns["counters"], dtype=np.float64)
        return Trace(
            rank=np.asarray(columns["rank"], dtype=np.int32),
            begin=np.asarray(columns["begin"], dtype=np.float64),
            duration=np.asarray(columns["duration"], dtype=np.float64),
            callpath_id=np.asarray(columns["callpath_id"], dtype=np.int32),
            counters=counters.reshape(n, len(doc["counter_names"])),
            counter_names=tuple(doc["counter_names"]),
            callstacks=CallstackTable.from_strings(doc["callstacks"]),
            nranks=int(doc["nranks"]),
            app=str(doc["app"]),
            scenario=dict(doc.get("scenario", {})),
            clock_hz=float(doc.get("clock_hz", 1e9)),
        )
    except TraceFormatError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise TraceFormatError(f"malformed trace document: {exc}") from exc


def _write_csv(trace: Trace, stream: TextIO) -> None:
    meta = {
        "app": trace.app,
        "nranks": trace.nranks,
        "scenario": trace.scenario,
        "clock_hz": trace.clock_hz,
        "callstacks": trace.callstacks.to_strings(),
    }
    stream.write(f"# repro-trace-csv v{_FORMAT_VERSION}\n")
    stream.write(f"# meta={json.dumps(meta)}\n")
    writer = csv.writer(stream)
    writer.writerow(["rank", "begin", "duration", "callpath_id", *trace.counter_names])
    counters = trace.counters_matrix
    for i in range(trace.n_bursts):
        writer.writerow(
            [
                int(trace.rank[i]),
                repr(float(trace.begin[i])),
                repr(float(trace.duration[i])),
                int(trace.callpath_id[i]),
                *(repr(float(v)) for v in counters[i]),
            ]
        )


def _read_csv(stream: TextIO) -> Trace:
    header = stream.readline()
    if not header.startswith("# repro-trace-csv"):
        raise TraceFormatError("missing repro-trace-csv header line")
    meta_line = stream.readline()
    if not meta_line.startswith("# meta="):
        raise TraceFormatError("missing meta header line")
    try:
        meta = json.loads(meta_line[len("# meta=") :])
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"malformed meta header: {exc}") from exc
    reader = csv.reader(stream)
    try:
        columns = next(reader)
    except StopIteration as exc:
        raise TraceFormatError("missing CSV column header") from exc
    expected_prefix = ["rank", "begin", "duration", "callpath_id"]
    if columns[: len(expected_prefix)] != expected_prefix:
        raise TraceFormatError(f"unexpected CSV columns: {columns}")
    counter_names = tuple(columns[len(expected_prefix) :])
    builder = TraceBuilder(
        nranks=int(meta["nranks"]),
        counter_names=counter_names,
        app=str(meta["app"]),
        scenario=dict(meta.get("scenario", {})),
        clock_hz=float(meta.get("clock_hz", 1e9)),
    )
    table = CallstackTable.from_strings(meta["callstacks"])
    paths = list(table)
    try:
        for row in reader:
            if not row:
                continue
            builder.add(
                rank=int(row[0]),
                begin=float(row[1]),
                duration=float(row[2]),
                callpath=paths[int(row[3])],
                counters=[float(v) for v in row[4:]],
            )
    except (IndexError, ValueError) as exc:
        raise TraceFormatError(f"malformed CSV row: {exc}") from exc
    return builder.build()


def _open_text(path: Path, mode: str) -> TextIO:
    if path.name.endswith(".gz"):
        return io.TextIOWrapper(gzip.open(path, mode + "b"), encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def _base_suffix(path: Path) -> str:
    name = path.name
    if name.endswith(".gz"):
        name = name[: -len(".gz")]
    return Path(name).suffix.lower()


def save_trace(trace: Trace, path: str | Path) -> Path:
    """Write *trace* to *path*; format chosen by extension.

    Supported: ``.json``, ``.csv`` (optionally ``.gz``-compressed) and
    ``.prv`` (Paraver triplet, see :mod:`repro.trace.prv`).  Returns
    the path written.
    """
    path = Path(path)
    suffix = _base_suffix(path)
    if suffix == ".prv":
        from repro.trace.prv import save_prv

        return save_prv(trace, path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with _open_text(path, "w") as stream:
        if suffix == ".json":
            json.dump(trace_to_json(trace), stream)
        elif suffix == ".csv":
            _write_csv(trace, stream)
        else:
            raise TraceFormatError(
                f"unsupported trace extension {suffix!r} "
                "(use .json, .csv or .prv)"
            )
    return path


def load_trace(path: str | Path, *, strict: bool = True) -> Trace:
    """Load a trace written by :func:`save_trace`.

    The loaded trace is validated against the structural invariants
    (:func:`repro.robust.validate_trace`): malformed content raises
    :class:`~repro.errors.TraceError` when *strict* (the default), while
    ``strict=False`` drops repairably bad bursts with a warning.
    """
    from repro.robust.validate import validate_trace

    path = Path(path)
    suffix = _base_suffix(path)
    if suffix == ".prv":
        from repro.trace.prv import load_prv

        return load_prv(path, strict=strict)
    try:
        with _open_text(path, "r") as stream:
            if suffix == ".json":
                try:
                    doc = json.load(stream)
                except json.JSONDecodeError as exc:
                    raise TraceFormatError(f"malformed JSON trace: {exc}") from exc
                trace = trace_from_json(doc)
            elif suffix == ".csv":
                trace = _read_csv(stream)
            else:
                raise TraceFormatError(
                    f"unsupported trace extension {suffix!r} "
                    "(use .json, .csv or .prv)"
                )
    except (OSError, UnicodeDecodeError, EOFError, gzip.BadGzipFile) as exc:
        raise TraceFormatError(f"cannot read trace {path}: {exc}") from exc
    return validate_trace(trace, strict=strict, where=str(path))
