"""Trace substrate: the CPU-burst data model the whole pipeline consumes.

The paper characterises applications at the granularity of *CPU bursts* —
the sequential computation between two calls into the MPI/OpenMP runtime.
Each burst carries its duration, a call-stack reference linking it to the
source code, and a vector of hardware-counter values describing how it
performed.  This subpackage provides:

- :class:`~repro.trace.burst.CPUBurst` — a single burst record.
- :class:`~repro.trace.trace.Trace` — an immutable struct-of-arrays
  container holding every burst of one experiment, plus scenario
  metadata (application, rank count, machine, free-form parameters).
- :mod:`~repro.trace.counters` — canonical hardware-counter names and a
  registry of derived metrics (IPC, MPKI rates...).
- :mod:`~repro.trace.callstack` — call-path model and interning table.
- :mod:`~repro.trace.io` — JSON / CSV persistence.
- :mod:`~repro.trace.filters` — burst selection (duration, ranks, time).
- :mod:`~repro.trace.stats` — per-trace summaries.
"""

from __future__ import annotations

from repro.trace.burst import CPUBurst
from repro.trace.callstack import CallPath, CallstackTable, StackFrame
from repro.trace.counters import (
    CYCLES,
    INSTRUCTIONS,
    L1_DCM,
    L2_DCM,
    STANDARD_COUNTERS,
    TLB_DM,
    derived_metric_names,
)
from repro.trace.filters import (
    filter_min_duration,
    filter_ranks,
    filter_time_window,
    filter_top_duration_fraction,
)
from repro.trace.io import load_trace, save_trace
from repro.trace.stats import TraceSummary, summarize
from repro.trace.trace import Trace, TraceBuilder

__all__ = [
    "CPUBurst",
    "Trace",
    "TraceBuilder",
    "CallPath",
    "StackFrame",
    "CallstackTable",
    "INSTRUCTIONS",
    "CYCLES",
    "L1_DCM",
    "L2_DCM",
    "TLB_DM",
    "STANDARD_COUNTERS",
    "derived_metric_names",
    "load_trace",
    "save_trace",
    "filter_min_duration",
    "filter_ranks",
    "filter_time_window",
    "filter_top_duration_fraction",
    "TraceSummary",
    "summarize",
]
