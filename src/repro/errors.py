"""Exception hierarchy for :mod:`repro`.

All exceptions raised intentionally by the package derive from
:class:`ReproError` so that callers can catch package-level failures with
a single ``except`` clause while letting programming errors propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "TraceError",
    "TraceFormatError",
    "ClusteringError",
    "TrackingError",
    "AlignmentError",
    "ModelError",
    "StudyError",
    "StreamError",
    "ServeError",
    "JobSpecError",
    "AdmissionError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class TraceError(ReproError):
    """A trace is structurally invalid (inconsistent columns, bad ranks...)."""


class TraceFormatError(TraceError):
    """A serialized trace could not be parsed."""


class ClusteringError(ReproError):
    """Cluster analysis failed (bad parameters, empty input...)."""


class TrackingError(ReproError):
    """The tracking pipeline received inconsistent frames or parameters."""


class AlignmentError(ReproError):
    """Sequence alignment received invalid input."""


class ModelError(ReproError):
    """A machine/application model was configured inconsistently."""


class StudyError(ReproError):
    """A parametric study configuration is invalid."""


class StreamError(ReproError):
    """A windowing or incremental-tracking request is invalid."""


class ServeError(ReproError):
    """A job-server request could not be honoured."""


class JobSpecError(ServeError):
    """A submitted job specification is malformed or names unknown knobs."""


class AdmissionError(ServeError):
    """A job was rejected by admission control (queue or tenant caps).

    ``reason`` is a stable machine-readable token (``"queue_full"`` or
    ``"tenant_cap"``) the HTTP layer maps to a 429 response.
    """

    def __init__(self, reason: str, message: str) -> None:
        super().__init__(message)
        self.reason = reason
