"""Incremental (online) tracking: consume frames one at a time.

The batch :class:`~repro.tracking.tracker.Tracker` holds every frame at
once; its cross-frame normalisation fits the shared [0, 1] box over the
union of *all* frames' weighted points, so a streaming tracker that has
only seen a prefix would scale differently and diverge.  The fix is
:class:`SpaceBounds`: the per-axis min/max of the weighted points,
precomputed from the raw metric points of every frame that will arrive
(cheap — no clustering needed).  With fixed bounds the incremental
normalisation is bit-identical to the batch one, every (previous, new)
pair is evaluated by exactly the same :func:`combine_pair` inputs, and
chaining through the shared :func:`~repro.tracking.tracker.chain_regions`
yields identical regions — the equality the differential test suite in
``tests/stream`` asserts on every bundled application.

Without bounds the tracker runs in *adaptive* mode: bounds grow as
frames arrive and each pair is evaluated in the space known at that
step.  That is a genuinely online approximation — useful for unbounded
streams — and is documented as such; only the fixed-bounds mode carries
the batch-equality guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

import numpy as np

from repro import obs
from repro.clustering.frames import Frame
from repro.clustering.normalize import MinMaxScaler
from repro.errors import StreamError, TrackingError
from repro.obs.log import get_logger
from repro.robust.partial import ItemFailure
from repro.tracking.combine import PairRelations
from repro.tracking.coverage import coverage_percent
from repro.tracking.evalcache import EvalCache
from repro.tracking.scaling import NormalizedSpace, weighted_frame_points
from repro.tracking.tracker import (
    TrackedRegion,
    TrackerConfig,
    TrackingResult,
    _combine_task,
    _combine_task_quarantine,
    _empty_pair_relations,
    chain_regions,
)

if TYPE_CHECKING:
    from repro.obs.alerts import AlertRecord
    from repro.stream.forecast import StreamMonitor

__all__ = ["SpaceBounds", "TrackUpdate", "IncrementalTracker"]

log = get_logger(__name__)


@dataclass(frozen=True, slots=True)
class SpaceBounds:
    """Fixed per-axis bounds of the shared normalised tracking space.

    Holds exactly what :class:`~repro.clustering.normalize.MinMaxScaler`
    would fit over the union of all frames' weighted points, plus the
    weighting anchor, so an incremental tracker can normalise each frame
    the moment it arrives and still land bit-identically where the batch
    tracker would put it.

    Attributes
    ----------
    axis_names:
        The clustering dimensions, (x, y, *extra).
    lo / hi:
        Per-axis minimum/maximum of the weighted points (exact float64
        values, stored as Python floats which round-trip binary64).
    ref_ranks:
        Core count of the reference frame anchoring the
        extensive-metric weighting.
    log_extensive:
        Whether extensive axes are normalised in log10 space.
    """

    axis_names: tuple[str, ...]
    lo: tuple[float, ...]
    hi: tuple[float, ...]
    ref_ranks: int
    log_extensive: bool = False

    @classmethod
    def from_raw_points(
        cls,
        points: list[np.ndarray],
        nranks: list[int],
        axes: tuple[str, ...],
        *,
        reference: int = 0,
        log_extensive: bool = False,
    ) -> "SpaceBounds":
        """Bounds from raw metric points, before any clustering.

        *points* holds one ``(n_i, d)`` raw metric matrix per future
        frame and *nranks* the matching core counts.  This is how the
        stream pipeline derives bounds during its pre-check pass: frame
        construction (DBSCAN) has not run yet, but the weighted-point
        extent only depends on the raw values.
        """
        if not points:
            raise TrackingError("SpaceBounds needs at least one frame")
        if not 0 <= reference < len(points):
            raise TrackingError(f"reference index {reference} out of range")
        ref_ranks = int(nranks[reference])
        lo = np.full(len(axes), np.inf)
        hi = np.full(len(axes), -np.inf)
        for values, n in zip(points, nranks):
            weighted, _ = weighted_frame_points(
                values, int(n), axes, ref_ranks=ref_ranks,
                log_extensive=log_extensive,
            )
            # min-of-mins == min over the vstacked union, exactly.
            lo = np.minimum(lo, weighted.min(axis=0))
            hi = np.maximum(hi, weighted.max(axis=0))
        return cls(
            axis_names=tuple(axes),
            lo=tuple(float(v) for v in lo),
            hi=tuple(float(v) for v in hi),
            ref_ranks=ref_ranks,
            log_extensive=log_extensive,
        )

    @classmethod
    def from_frames(
        cls,
        frames: list[Frame],
        *,
        reference: int = 0,
        log_extensive: bool = False,
    ) -> "SpaceBounds":
        """Bounds over a known frame list (the ``track_stream`` shim)."""
        return cls.from_raw_points(
            [frame.points for frame in frames],
            [frame.trace.nranks for frame in frames],
            frames[0].settings.metric_names if frames else (),
            reference=reference,
            log_extensive=log_extensive,
        )

    def scaler(self) -> MinMaxScaler:
        """The shared min-max transform these bounds define."""
        return MinMaxScaler(
            lo=np.asarray(self.lo, dtype=np.float64),
            hi=np.asarray(self.hi, dtype=np.float64),
        )

    def expanded(self, weighted: np.ndarray) -> "SpaceBounds":
        """Bounds grown to also cover one more frame's weighted points."""
        lo = np.minimum(np.asarray(self.lo), weighted.min(axis=0))
        hi = np.maximum(np.asarray(self.hi), weighted.max(axis=0))
        return SpaceBounds(
            axis_names=self.axis_names,
            lo=tuple(float(v) for v in lo),
            hi=tuple(float(v) for v in hi),
            ref_ranks=self.ref_ranks,
            log_extensive=self.log_extensive,
        )


@dataclass(frozen=True)
class TrackUpdate:
    """What one :meth:`IncrementalTracker.push` changed.

    Attributes
    ----------
    step:
        Index of the pushed frame in the stream (0-based).
    frame:
        The frame just consumed.
    pair:
        Relations between the previous frame and this one (``None`` on
        the first push — there is no pair yet).
    regions:
        The tracked regions over the frames seen so far, duration-ranked
        exactly as the batch tracker would rank them on the same prefix.
    coverage:
        Coverage percentage over the prefix.
    failure:
        The quarantine record when a non-strict pair evaluation failed
        (the pair then carries no relations), else ``None``.
    alerts:
        Alerts the attached :class:`~repro.stream.forecast.StreamMonitor`
        raised on this push (always empty without a monitor).  Alerts
        are a pure observer output — they never influence the tracked
        state.
    """

    step: int
    frame: Frame
    pair: PairRelations | None
    regions: tuple[TrackedRegion, ...]
    coverage: int
    failure: ItemFailure | None = None
    alerts: tuple["AlertRecord", ...] = field(default=())


class IncrementalTracker:
    """Consume frames one at a time, tracking regions online.

    Maintains the region registry (via incremental re-chaining of the
    accumulated pair relations), the last frame's object inventory and
    the per-pair pivot state, and evaluates the four evaluators only on
    the (previous, new) frame pair at each step — the whole sequence is
    never recomputed.

    Parameters
    ----------
    config:
        Tracker tunables (shared with the batch tracker).
    bounds:
        Precomputed :class:`SpaceBounds`.  With bounds the output is
        bit-identical to ``Tracker(frames).run()`` over the same frames;
        without, the tracker runs in adaptive (approximate) mode, which
        requires ``config.reference == 0`` because only the first frame
        is guaranteed to be known when weighting starts.
    strict:
        When true a failing pair evaluation raises; when false the pair
        is quarantined (no relations) and recorded on :attr:`failures`.
    monitor:
        Optional :class:`~repro.stream.forecast.StreamMonitor`.  After
        each push the monitor inspects the finished
        :class:`TrackUpdate` and its alerts are attached to
        :attr:`TrackUpdate.alerts`; the tracked state itself is never
        affected (the purity guarantee the differential suite enforces).
    max_live_frames:
        Memory bound: hold at most this many full frames.  After each
        push, frames older than the newest *k* are condensed into
        :class:`~repro.tracking.digest.FrameDigest` aggregates and
        their burst-level data (trace columns, points) is released, so
        peak memory is O(k) in the stream length instead of O(n).
        Regions, coverage and pair relations are unaffected — pairs are
        always evaluated while both frames are live — but the final
        result's evicted frames expose aggregates only (trend means may
        differ in the last float bits; reports skip burst-level
        visualisations).  Requires fixed *bounds* (adaptive mode must
        retain every frame's weighted points to re-normalise).
    """

    def __init__(
        self,
        config: TrackerConfig | None = None,
        *,
        bounds: SpaceBounds | None = None,
        strict: bool = True,
        monitor: "StreamMonitor | None" = None,
        max_live_frames: int | None = None,
    ) -> None:
        self.config = config or TrackerConfig()
        self.strict = strict
        self.bounds = bounds
        self.monitor = monitor
        if max_live_frames is not None:
            if max_live_frames < 1:
                raise StreamError(
                    f"max_live_frames must be >= 1, got {max_live_frames}"
                )
            if bounds is None:
                raise StreamError(
                    "max_live_frames requires fixed SpaceBounds: adaptive "
                    "mode re-normalises every frame's weighted points at "
                    "the end, so it cannot release them"
                )
        self.max_live_frames = max_live_frames
        if bounds is None and self.config.reference != 0:
            raise StreamError(
                "adaptive-bounds streaming requires config.reference == 0 "
                f"(got {self.config.reference}); pass precomputed "
                "SpaceBounds to anchor on a later frame"
            )
        if bounds is not None and bounds.log_extensive != self.config.log_extensive:
            raise StreamError(
                "SpaceBounds.log_extensive disagrees with "
                "config.log_extensive; rebuild the bounds with the "
                "tracker's configuration"
            )
        self._scaler = bounds.scaler() if bounds is not None else None
        self._frames: list[Frame] = []
        self._weighted: list[np.ndarray] = []
        self._weights: list[tuple[float, ...]] = []
        self._points: list[np.ndarray] = []
        self._pairs: list[PairRelations] = []
        self._failures: list[ItemFailure] = []
        # Per-run evaluator cache: the newest frame's artefacts (k-d
        # tree, star alignment) are reused when it becomes the next
        # pair's left side; retain() keeps it O(1) in stream length.
        self._cache = EvalCache()

    # ------------------------------------------------------------------
    @property
    def n_frames(self) -> int:
        """Number of frames consumed so far."""
        return len(self._frames)

    @property
    def failures(self) -> tuple[ItemFailure, ...]:
        """Quarantine records of failed pair evaluations (non-strict)."""
        return tuple(self._failures)

    @property
    def n_live_frames(self) -> int:
        """Frames still held in full (not condensed to digests)."""
        from repro.tracking.digest import FrameDigest

        return sum(
            1 for frame in self._frames if not isinstance(frame, FrameDigest)
        )

    def cache_info(self) -> dict[str, int]:
        """The per-run :class:`EvalCache` occupancy counters."""
        return self._cache.info()

    def _axes(self, frame: Frame) -> tuple[str, ...]:
        axes = frame.settings.metric_names
        if self.bounds is not None and axes != self.bounds.axis_names:
            raise TrackingError(
                f"frame {frame.label!r} lives in metric space {axes}, "
                f"bounds cover {self.bounds.axis_names}"
            )
        if self._frames and self._frames[0].settings.metric_names != axes:
            raise TrackingError(
                "frames were built in different metric spaces; rebuild "
                "them with shared FrameSettings"
            )
        return axes

    def push(
        self,
        frame: Frame,
        *,
        precomputed: tuple[PairRelations, ItemFailure | None] | None = None,
    ) -> TrackUpdate:
        """Consume one frame; evaluate only the (previous, new) pair.

        *precomputed* replays a checkpointed pair — the stored
        :class:`PairRelations` (and its quarantine record, if any) are
        adopted verbatim instead of re-running the evaluators, which is
        how a restarted watch resumes without recomputing completed
        windows.
        """
        from repro.robust.validate import validate_frame

        validate_frame(frame)
        axes = self._axes(frame)
        ref_ranks = (
            self.bounds.ref_ranks
            if self.bounds is not None
            else (self._frames[0] if self._frames else frame).trace.nranks
        )
        weighted, axis_weights = weighted_frame_points(
            frame.points,
            frame.trace.nranks,
            axes,
            ref_ranks=ref_ranks,
            log_extensive=self.config.log_extensive,
        )

        pair: PairRelations | None = None
        failure: ItemFailure | None = None
        if self.bounds is not None:
            points_new = self._scaler.transform(weighted)
            points_prev = self._points[-1] if self._points else None
        else:
            # Adaptive mode: grow the bounds, then evaluate this pair in
            # the space known right now.  Earlier pairs keep the space
            # they were evaluated in — an explicit approximation.
            if self.bounds is None and not self._frames:
                running = SpaceBounds(
                    axis_names=axes,
                    lo=tuple(float(v) for v in weighted.min(axis=0)),
                    hi=tuple(float(v) for v in weighted.max(axis=0)),
                    ref_ranks=int(ref_ranks),
                    log_extensive=self.config.log_extensive,
                )
            else:
                running = self._running.expanded(weighted)
            self._running = running
            scaler = running.scaler()
            points_new = scaler.transform(weighted)
            points_prev = (
                scaler.transform(self._weighted[-1]) if self._weighted else None
            )

        if self._frames:
            if precomputed is not None:
                pair, failure = precomputed
            else:
                task = (
                    len(self._pairs),
                    self._frames[-1],
                    frame,
                    points_prev,
                    points_new,
                    self.config,
                    self._cache,
                )
                if self.strict:
                    pair = _combine_task(task)
                else:
                    outcome = _combine_task_quarantine(task)
                    if isinstance(outcome, ItemFailure):
                        failure = outcome
                        obs.count("robust.quarantined_total", stage="pair")
                        log.warning("quarantined pair: %s", failure)
                        pair = _empty_pair_relations(self._frames[-1], frame)
                    else:
                        pair = outcome
            if failure is not None and precomputed is not None:
                obs.count("robust.quarantined_total", stage="pair")
            self._pairs.append(pair)
            if failure is not None:
                self._failures.append(failure)

        self._frames.append(frame)
        self._weighted.append(weighted)
        self._weights.append(axis_weights)
        self._points.append(points_new)
        self._cache.retain([frame])
        self._condense()

        regions = chain_regions(self._frames, self._pairs)
        coverage = coverage_percent(regions, self._frames)
        update = TrackUpdate(
            step=len(self._frames) - 1,
            frame=frame,
            pair=pair,
            regions=tuple(regions),
            coverage=coverage,
            failure=failure,
        )
        if self.monitor is not None:
            update = replace(update, alerts=self.monitor.observe(update))
        return update

    def _condense(self) -> None:
        """Evict frames beyond the memory bound, keeping their digests.

        Only frames older than the newest ``max_live_frames`` are
        touched, so the next pair's left side is always still live.
        Replacing the list entry drops the last strong reference to the
        full frame (and its trace columns); the matching weighted and
        normalised point arrays are released too.
        """
        if self.max_live_frames is None:
            return
        from repro.tracking.digest import FrameDigest

        cutoff = len(self._frames) - self.max_live_frames
        for index in range(cutoff):
            frame = self._frames[index]
            if isinstance(frame, FrameDigest):
                continue
            self._frames[index] = FrameDigest.from_frame(frame)
            dims = self._points[index].shape[1]
            self._weighted[index] = np.empty((0, dims))
            self._points[index] = np.empty((0, dims))
            obs.count("stream.frames_condensed_total")

    def result(self) -> TrackingResult:
        """Final batch-compatible result over every frame consumed.

        With fixed bounds this is exactly what
        ``Tracker(frames, config).run()`` returns for the same frames
        (same regions, same pair relations, same normalised space).
        Requires at least two frames, like the batch tracker.
        """
        if len(self._frames) < 2:
            raise TrackingError("tracking needs at least two frames")
        if self.bounds is not None:
            scaler = self._scaler
            points = tuple(self._points)
        else:
            scaler = self._running.scaler()
            points = tuple(scaler.transform(w) for w in self._weighted)
        space = NormalizedSpace(
            points=points,
            weights=tuple(self._weights),
            scaler=scaler,
            axis_names=self._frames[0].settings.metric_names,
        )
        regions = chain_regions(self._frames, self._pairs)
        coverage = coverage_percent(regions, self._frames)
        return TrackingResult(
            frames=tuple(self._frames),
            space=space,
            pair_relations=tuple(self._pairs),
            regions=tuple(regions),
            coverage=coverage,
        )
