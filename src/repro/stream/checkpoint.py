"""Checkpoint serde: resume a windowed watch from the pipeline cache.

A streaming run over N windows stores, after every completed window, a
checkpoint entry in the :class:`~repro.parallel.cache.PipelineCache`
keyed by ``(trace digest, window spec, settings, config, strict)``.  The
payload holds per-window outcomes (labels for built frames, quarantine
records, empty markers) plus the full JSON form of every evaluated
:class:`~repro.tracking.combine.PairRelations`, so a restarted watch
replays completed windows verbatim — no DBSCAN, no evaluators — and
continues live from the first uncompleted one.  JSON floats round-trip
binary64 exactly, so replayed relations are bit-identical to the ones
originally computed.

Corruption handling follows the cache's contract: a checkpoint that
fails to parse or validate in any way is dropped wholesale and the run
starts cold — never crashed on, never partially trusted.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Mapping

import numpy as np

from repro._version import __version__
from repro.clustering.frames import FrameSettings
from repro.errors import ReproError
from repro.obs.alerts import AlertRecord
from repro.obs.log import get_logger
from repro.parallel.cache import PipelineCache, _canonical, trace_digest
from repro.robust.partial import ItemFailure
from repro.tracking.combine import (
    PairProvenance,
    PairRelations,
    Relation,
    RelationProvenance,
)
from repro.tracking.correlation import CorrelationMatrix
from repro.tracking.tracker import TrackerConfig
from repro.trace.trace import Trace

__all__ = [
    "WindowRecord",
    "stream_key",
    "load_checkpoint",
    "save_checkpoint",
    "pair_relations_to_json",
    "pair_relations_from_json",
]

log = get_logger(__name__)

#: Checkpoint payload schema written by this version.  Format 2 added
#: the optional per-window ``alerts`` list; format-1 checkpoints (no
#: alert fields) still load — see :data:`_ACCEPTED_FORMATS`.
_CHECKPOINT_FORMAT = 2

#: Formats :func:`load_checkpoint` accepts.  Older formats simply lack
#: newer optional fields, which default to empty on load.
_ACCEPTED_FORMATS = (1, 2)


@dataclass(frozen=True)
class WindowRecord:
    """Outcome of one processed window, as stored in a checkpoint.

    ``status`` is ``"ok"`` (with the frame's per-point *labels*),
    ``"empty"`` (no bursts) or ``"quarantined"`` (with the *failure*
    record).  ``pair`` / ``pair_failure`` carry the relations evaluated
    when this window's frame was pushed (``None`` for the first frame
    and for non-ok windows).  ``alerts`` holds the monitor's alerts for
    this window when the run had alerting enabled (empty otherwise, and
    for format-1 checkpoints written before alerting existed).
    """

    window: int
    status: str
    labels: np.ndarray | None = None
    failure: ItemFailure | None = None
    pair: PairRelations | None = None
    pair_failure: ItemFailure | None = None
    alerts: tuple[AlertRecord, ...] = ()


def stream_key(
    trace: Trace,
    spec_dict: Mapping[str, Any],
    settings: FrameSettings,
    config: TrackerConfig,
    *,
    strict: bool,
    shards: int = 1,
    max_live: int | None = None,
    version: str = __version__,
) -> dict[str, Any]:
    """Cache key of one windowed streaming run.

    Every knob that shapes the run participates — including *shards*
    and the *max_live* memory bound, so a resumed run with a different
    sharding or retention configuration starts cold instead of
    silently adopting a checkpoint written under different settings.
    """
    return {
        "kind": "stream",
        "trace": trace_digest(trace),
        "windows": _canonical(dict(spec_dict)),
        "settings": _canonical(asdict(settings)),
        "config": _canonical(asdict(config)),
        "strict": bool(strict),
        "shards": int(shards),
        "max_live": None if max_live is None else int(max_live),
        "version": version,
    }


# ----------------------------------------------------------------------
# PairRelations <-> JSON
# ----------------------------------------------------------------------
def _matrix_to_json(matrix: CorrelationMatrix) -> dict[str, Any]:
    return {
        "row_ids": list(matrix.row_ids),
        "col_ids": list(matrix.col_ids),
        "values": np.asarray(matrix.values, dtype=np.float64).tolist(),
    }


def _matrix_from_json(data: Mapping[str, Any]) -> CorrelationMatrix:
    row_ids = tuple(int(v) for v in data["row_ids"])
    col_ids = tuple(int(v) for v in data["col_ids"])
    values = np.asarray(data["values"], dtype=np.float64).reshape(
        (len(row_ids), len(col_ids))
    )
    return CorrelationMatrix(row_ids=row_ids, col_ids=col_ids, values=values)


def _provenance_to_json(prov: PairProvenance) -> dict[str, Any]:
    return {
        "proposed": prov.proposed,
        "pruned": prov.pruned,
        "rescued_callstack": prov.rescued_callstack,
        "rescued_sequence": prov.rescued_sequence,
        "widened": prov.widened,
        "splits": prov.splits,
        "relations": [
            {
                "proposed_by": record.proposed_by,
                "edge_counts": [[name, n] for name, n in record.edge_counts],
                "events": list(record.events),
                "support": [[name, value] for name, value in record.support],
            }
            for record in prov.relations
        ],
    }


def _provenance_from_json(data: Mapping[str, Any]) -> PairProvenance:
    return PairProvenance(
        relations=tuple(
            RelationProvenance(
                proposed_by=str(record["proposed_by"]),
                edge_counts=tuple(
                    (str(name), int(n)) for name, n in record["edge_counts"]
                ),
                events=tuple(str(event) for event in record["events"]),
                support=tuple(
                    (str(name), float(value)) for name, value in record["support"]
                ),
            )
            for record in data["relations"]
        ),
        proposed=int(data["proposed"]),
        pruned=int(data["pruned"]),
        rescued_callstack=int(data["rescued_callstack"]),
        rescued_sequence=int(data["rescued_sequence"]),
        widened=int(data["widened"]),
        splits=int(data["splits"]),
    )


def pair_relations_to_json(pair: PairRelations) -> dict[str, Any]:
    """JSON form of one pair's relations (exact float round-trip)."""
    return {
        "relations": [
            {"left": sorted(rel.left), "right": sorted(rel.right)}
            for rel in pair.relations
        ],
        "displacement_ab": _matrix_to_json(pair.displacement_ab),
        "displacement_ba": _matrix_to_json(pair.displacement_ba),
        "callstack_ab": _matrix_to_json(pair.callstack_ab),
        "simultaneity_a": _matrix_to_json(pair.simultaneity_a),
        "simultaneity_b": _matrix_to_json(pair.simultaneity_b),
        "sequence_ab": (
            _matrix_to_json(pair.sequence_ab)
            if pair.sequence_ab is not None
            else None
        ),
        "provenance": (
            _provenance_to_json(pair.provenance)
            if pair.provenance is not None
            else None
        ),
    }


def pair_relations_from_json(data: Mapping[str, Any]) -> PairRelations:
    """Rebuild :class:`PairRelations` from its JSON form."""
    return PairRelations(
        relations=tuple(
            Relation(
                left=frozenset(int(v) for v in rel["left"]),
                right=frozenset(int(v) for v in rel["right"]),
            )
            for rel in data["relations"]
        ),
        displacement_ab=_matrix_from_json(data["displacement_ab"]),
        displacement_ba=_matrix_from_json(data["displacement_ba"]),
        callstack_ab=_matrix_from_json(data["callstack_ab"]),
        simultaneity_a=_matrix_from_json(data["simultaneity_a"]),
        simultaneity_b=_matrix_from_json(data["simultaneity_b"]),
        sequence_ab=(
            _matrix_from_json(data["sequence_ab"])
            if data.get("sequence_ab") is not None
            else None
        ),
        provenance=(
            _provenance_from_json(data["provenance"])
            if data.get("provenance") is not None
            else None
        ),
    )


def _failure_to_json(failure: ItemFailure | None) -> dict[str, str] | None:
    if failure is None:
        return None
    return {
        "item": failure.item,
        "stage": failure.stage,
        "error": failure.error,
        "message": failure.message,
    }


def _failure_from_json(data: Mapping[str, str] | None) -> ItemFailure | None:
    if data is None:
        return None
    return ItemFailure(
        item=str(data["item"]),
        stage=str(data["stage"]),
        error=str(data["error"]),
        message=str(data["message"]),
    )


# ----------------------------------------------------------------------
# Checkpoint load/save
# ----------------------------------------------------------------------
def save_checkpoint(
    cache: PipelineCache,
    key: Mapping[str, Any],
    records: list[WindowRecord],
) -> None:
    """Store the windows completed so far under the stream key."""
    payload = {
        "format": _CHECKPOINT_FORMAT,
        "windows": [
            {
                "window": record.window,
                "status": record.status,
                "labels": (
                    np.asarray(record.labels).tolist()
                    if record.labels is not None
                    else None
                ),
                "failure": _failure_to_json(record.failure),
                "pair": (
                    pair_relations_to_json(record.pair)
                    if record.pair is not None
                    else None
                ),
                "pair_failure": _failure_to_json(record.pair_failure),
                "alerts": [alert.to_dict() for alert in record.alerts],
            }
            for record in records
        ],
    }
    cache.put(key, payload)


def load_checkpoint(
    cache: PipelineCache,
    key: Mapping[str, Any],
) -> list[WindowRecord] | None:
    """Fetch and materialise a checkpoint, or ``None``.

    Any parse or validation problem — wrong schema, malformed matrices,
    inconsistent shapes — drops the entry and returns ``None`` so the
    run simply starts cold.
    """
    payload = cache.get(key)
    if payload is None:
        return None
    try:
        if payload.get("format") not in _ACCEPTED_FORMATS:
            raise ValueError(f"checkpoint format {payload.get('format')!r}")
        records: list[WindowRecord] = []
        for entry in payload["windows"]:
            status = str(entry["status"])
            if status not in ("ok", "empty", "quarantined"):
                raise ValueError(f"unknown window status {status!r}")
            labels = entry.get("labels")
            if status == "ok" and labels is None:
                raise ValueError("ok window without labels")
            records.append(
                WindowRecord(
                    window=int(entry["window"]),
                    status=status,
                    labels=(
                        np.asarray(labels, dtype=np.int32)
                        if labels is not None
                        else None
                    ),
                    failure=_failure_from_json(entry.get("failure")),
                    pair=(
                        pair_relations_from_json(entry["pair"])
                        if entry.get("pair") is not None
                        else None
                    ),
                    pair_failure=_failure_from_json(entry.get("pair_failure")),
                    alerts=tuple(
                        AlertRecord.from_dict(alert)
                        for alert in entry.get("alerts") or ()
                    ),
                )
            )
        return records
    except (KeyError, TypeError, ValueError, ReproError) as error:
        log.warning("discarding corrupt stream checkpoint: %s", error)
        cache.invalidate(key)
        return None
