"""Time-interval windowing: slice one trace into a frame sequence.

The paper defines a frame as the bursts of "each experiment *(or time
interval)*" — this module implements the time-interval half.  A trace is
partitioned into contiguous windows of its time axis; every burst lands
in exactly one window (assignment is by *begin* timestamp, so a burst
straddling an edge is owned by the window it starts in), per-rank burst
order is preserved (windowing is a mask selection over an already
ordered trace), and the concatenation of all windows round-trips the
original trace.  Each window is an ordinary :class:`~repro.trace.Trace`
whose scenario gains a ``"window"`` key, so the existing frame pipeline,
cache keys and labels all distinguish windows for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import StreamError
from repro.trace.trace import Trace

__all__ = ["WINDOW_KEY", "WindowSpec", "slice_trace", "concat_windows"]

#: Scenario key carrying the window index of a sliced sub-trace.
WINDOW_KEY = "window"


@dataclass(frozen=True, slots=True)
class WindowSpec:
    """How one trace was partitioned along its time axis.

    Attributes
    ----------
    mode:
        ``"count"`` (a fixed number of equal windows) or ``"width"``
        (fixed window duration, last window possibly shorter).
    n_windows:
        Number of windows the trace was split into.
    width:
        Window width in seconds (0.0 for a zero-span trace).
    t0 / t_end:
        Time extent of the trace: earliest begin and latest end.
    """

    mode: str
    n_windows: int
    width: float
    t0: float
    t_end: float

    def as_dict(self) -> dict[str, Any]:
        """JSON/cache-key form (floats keep their exact binary value)."""
        return {
            "mode": self.mode,
            "n_windows": self.n_windows,
            "width": self.width,
            "t0": self.t0,
            "t_end": self.t_end,
        }

    def window_of(self, begin: np.ndarray) -> np.ndarray:
        """Window index of each begin timestamp (vectorised)."""
        if self.width <= 0:
            return np.zeros(begin.shape[0], dtype=np.int64)
        idx = np.floor((begin - self.t0) / self.width).astype(np.int64)
        return np.clip(idx, 0, self.n_windows - 1)


def _window_trace(trace: Trace, mask: np.ndarray, index: int) -> Trace:
    sub = trace.select(mask)
    # select() copies the scenario dict, so tagging the copy cannot leak
    # into the parent trace.
    sub.scenario[WINDOW_KEY] = index
    return sub


def slice_trace(
    trace: Trace,
    *,
    n_windows: int | None = None,
    window_ns: float | None = None,
) -> tuple[WindowSpec, list[Trace]]:
    """Partition *trace* into contiguous time windows.

    Exactly one of the two arguments selects the mode:

    ``n_windows``
        Split the span ``[min(begin), max(end)]`` into that many equal
        windows.
    ``window_ns``
        Fixed window duration in **nanoseconds** (trace times are
        seconds); the number of windows follows from the span and the
        last window may be shorter.

    Every burst is assigned to exactly one window by its *begin*
    timestamp; windows may be empty (they still appear in the returned
    list so indices are stable).  Each window trace carries a
    ``"window"`` scenario key.  A trace whose bursts all start at the
    same instant collapses into window 0.

    Returns ``(spec, windows)`` where ``len(windows) == spec.n_windows``.
    """
    if (n_windows is None) == (window_ns is None):
        raise StreamError(
            "pass exactly one of n_windows= or window_ns= to slice_trace"
        )
    if trace.n_bursts == 0:
        raise StreamError(
            f"trace {trace.label()!r} has no bursts; nothing to window"
        )
    t0 = float(trace.begin.min())
    t_end = float(trace.end.max())
    span = t_end - t0
    if n_windows is not None:
        n = int(n_windows)
        if n < 1:
            raise StreamError(f"n_windows must be >= 1, got {n_windows}")
        if span > 0:
            width = span / n
        else:
            # Zero-width span (every burst starts at the same instant):
            # collapse to the explicit single-window degenerate case
            # instead of emitting n zero-width windows whose float-edge
            # assignment would be accidental.  window_of() sends every
            # begin to window 0 when width == 0.
            n = 1
            width = 0.0
        mode = "count"
    else:
        width = float(window_ns) * 1e-9
        if width <= 0:
            raise StreamError(f"window_ns must be > 0, got {window_ns}")
        n = max(1, int(np.ceil(span / width))) if span > 0 else 1
        mode = "width"

    spec = WindowSpec(mode=mode, n_windows=n, width=width, t0=t0, t_end=t_end)
    idx = spec.window_of(trace.begin)
    windows = [_window_trace(trace, idx == i, i) for i in range(n)]
    return spec, windows


def concat_windows(windows: list[Trace]) -> Trace:
    """Concatenate window sub-traces back into one trace.

    The inverse of :func:`slice_trace` up to burst order: the windows'
    columns are concatenated in list order, the ``"window"`` scenario
    key is stripped, and all shared metadata (app, nranks, counter
    names, callstack table, clock) must agree.  Comparing against the
    original trace is order-insensitive via
    ``concat_windows(ws).sorted_by_time() == trace.sorted_by_time()``.
    """
    if not windows:
        raise StreamError("concat_windows needs at least one window")
    first = windows[0]
    scenario = {k: v for k, v in first.scenario.items() if k != WINDOW_KEY}
    for window in windows[1:]:
        other = {k: v for k, v in window.scenario.items() if k != WINDOW_KEY}
        if (
            window.app != first.app
            or window.nranks != first.nranks
            or window.counter_names != first.counter_names
            or window.clock_hz != first.clock_hz
            or window.callstacks != first.callstacks
            or other != scenario
        ):
            raise StreamError(
                "windows disagree on trace metadata; they must come from "
                "one slice_trace call"
            )
    return Trace(
        rank=np.concatenate([w.rank for w in windows]),
        begin=np.concatenate([w.begin for w in windows]),
        duration=np.concatenate([w.duration for w in windows]),
        callpath_id=np.concatenate([w.callpath_id for w in windows]),
        counters=np.concatenate([w.counters_matrix for w in windows]),
        counter_names=first.counter_names,
        callstacks=first.callstacks,
        nranks=first.nranks,
        app=first.app,
        scenario=scenario,
        clock_hz=first.clock_hz,
    )
