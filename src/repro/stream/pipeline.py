"""The windowed streaming pipeline: trace -> windows -> incremental track.

:func:`track_windows` is the end-to-end entry point behind
``repro-track watch`` and ``quick_track(windows=N)``'s streaming shim:

1. validate the trace, slice it into time windows
   (:func:`repro.stream.window.slice_trace`);
2. **pre-check pass** — run the cheap frame pre-checks
   (:func:`repro.clustering.frames.precheck_frame_input`) on every
   non-empty window.  Windows that cannot become frames raise (strict)
   or are quarantined with ``stage="window"`` (non-strict); the
   survivors' raw points feed the fixed
   :class:`~repro.stream.incremental.SpaceBounds`, which is what makes
   the incremental result bit-identical to the batch tracker's;
3. **streaming pass** — build each surviving window's frame (honouring
   the frame-label cache), push it into an
   :class:`~repro.stream.incremental.IncrementalTracker`, emit a
   :class:`~repro.stream.incremental.TrackUpdate` through *on_update*,
   record per-window metrics (``stream.update_seconds`` histogram,
   ``stream.updates_total``) and persist a resume checkpoint after
   every completed window.

A restarted run with the same cache replays completed windows from the
checkpoint (counted on ``stream.windows_resumed``) without recomputing
frames or evaluators, then continues live.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Callable

from repro import obs
from repro.clustering.frames import (
    Frame,
    FrameSettings,
    frame_from_labels,
    make_frame,
    precheck_frame_input,
)
from repro.errors import ClusteringError, ReproError, TrackingError
from repro.obs import ledger as obsledger
from repro.obs.alerts import summarize_alerts
from repro.obs.log import get_logger
from repro.parallel.cache import PipelineCache, frame_key
from repro.parallel.executor import pmap, resolve_jobs
from repro.robust.partial import ItemFailure, PartialResult
from repro.robust.validate import validate_trace
from repro.stream.checkpoint import (
    WindowRecord,
    load_checkpoint,
    save_checkpoint,
    stream_key,
)
from repro.stream.forecast import WatchTelemetry
from repro.stream.incremental import IncrementalTracker, SpaceBounds, TrackUpdate
from repro.stream.window import slice_trace
from repro.tracking.tracker import TrackerConfig, TrackingResult
from repro.trace.trace import Trace

__all__ = ["track_windows", "windowed_traces"]

log = get_logger(__name__)


def windowed_traces(
    traces: list[Trace],
    *,
    n_windows: int | None = None,
    window_ns: float | None = None,
) -> list[Trace]:
    """Slice each trace into time windows; drop the empty ones.

    The batch shim behind ``quick_track(windows=N)``: the returned
    window sub-traces feed the ordinary frames-then-track pipeline in
    window order (and trace order, when several traces are given).
    """
    out: list[Trace] = []
    for trace in traces:
        _, windows = slice_trace(
            trace, n_windows=n_windows, window_ns=window_ns
        )
        obs.count("stream.windows_total", len(windows))
        for window in windows:
            if window.n_bursts == 0:
                obs.count("stream.windows_empty")
                continue
            out.append(window)
    return out


def _window_frame(
    window: Trace,
    settings: FrameSettings,
    cache: PipelineCache | None,
    *,
    shards: int = 1,
    labels=None,
) -> Frame:
    """Build one window's frame, through the frame-label cache if given.

    *labels* short-circuits with a prefetched labelling (the sharded
    multi-process watch computes window labels ahead of the serial push
    loop); a labelling that does not fit the window falls through to
    the normal cache/compute path.
    """
    if labels is not None:
        try:
            return frame_from_labels(window, settings, labels)
        except ClusteringError:
            pass
    key = None
    if cache is not None:
        key = frame_key(window, settings)
        cached = cache.get_labels(key)
        if cached is not None:
            try:
                return frame_from_labels(window, settings, cached)
            except ClusteringError:
                cache.invalidate(key)
    frame = make_frame(window, settings, shards=shards)
    if cache is not None:
        cache.put_labels(key, frame.labels)
    return frame


def _window_labels_task(task):
    """Worker-side task: compute (or claim) one window's cluster labels.

    Work claiming goes through the shared frame-label cache: the task
    first checks whether another worker (or an earlier run) already
    committed this window's labels — ``PipelineCache`` writes are
    atomic, so concurrent workers race safely and the loser merely
    recomputes.  Labels are bit-identical at any shard count, so the
    parent's serial push loop is unaffected by who computed what.
    """
    window, settings, shards, cache_root = task
    cache = PipelineCache(cache_root) if cache_root is not None else None
    key = None
    if cache is not None:
        key = frame_key(window, settings)
        labels = cache.get_labels(key)
        if labels is not None:
            return labels
    frame = make_frame(window, settings, shards=shards)
    if cache is not None:
        cache.put_labels(key, frame.labels)
    return frame.labels


def _status_matches(record: WindowRecord, status: str, window_index: int) -> bool:
    return record.window == window_index and record.status == status


def track_windows(
    trace: Trace,
    *,
    n_windows: int | None = None,
    window_ns: float | None = None,
    settings: FrameSettings | None = None,
    config: TrackerConfig | None = None,
    strict: bool = True,
    cache: PipelineCache | None = None,
    on_update: Callable[[TrackUpdate], None] | None = None,
    telemetry: WatchTelemetry | None = None,
    shards: int = 1,
    jobs: int | None = None,
    max_live_windows: int | None = None,
) -> "TrackingResult | PartialResult[TrackingResult]":
    """Slice *trace* into time windows and track them incrementally.

    Parameters
    ----------
    trace:
        The trace to stream (validated first; non-strict runs repair
        repairably bad bursts as usual).
    n_windows / window_ns:
        Window specification, exactly one required — see
        :func:`repro.stream.window.slice_trace`.
    settings / config:
        Frame-construction and tracker tunables.  ``settings.log_y``
        implies ``config.log_extensive`` like in ``quick_track``.
    strict:
        Strict runs raise on the first bad window or failing pair and
        return a plain :class:`TrackingResult`.  Non-strict runs
        quarantine degenerate windows (``stage="window"``) and failing
        pairs (``stage="pair"``) and return a
        :class:`~repro.robust.partial.PartialResult`.  Fewer than two
        surviving windows raises :class:`TrackingError` either way.
    cache:
        Optional pipeline cache.  Enables both the per-window
        frame-label cache and the stream checkpoint keyed by
        (trace digest, window spec, settings, config, strict): a
        restarted run resumes from the last completed window.
    on_update:
        Called with a :class:`TrackUpdate` after every *live* frame
        push (replayed windows do not re-fire it).
    telemetry:
        Optional :class:`~repro.stream.forecast.WatchTelemetry`
        collecting the run's health surface (window/update counts,
        update latency, alerts).  When its
        :class:`~repro.stream.forecast.StreamMonitor` is attached
        (``WatchTelemetry(alerts=AlertConfig())``), every pushed frame
        is also forecast-checked and the resulting alerts ride on
        :attr:`TrackUpdate.alerts`, the checkpoint, and
        ``telemetry.alerts``.  Monitoring is a pure observer: the
        tracked regions/relations/labels are bit-identical with it on
        or off.
    shards:
        Cluster each window's bursts through the sharded
        cluster-then-merge engine (:mod:`repro.shard`) with this many
        rank-shards.  Labels are bit-identical at any shard count, so
        this is purely a throughput knob; it still participates in the
        stream key so resumed runs stay self-consistent.
    jobs:
        Worker count for the multi-process window fan-out.  More than
        one job prefetches the pending windows' cluster labels across
        ``pmap`` workers — claiming work through the (atomic) frame
        label cache when one is given — before the serial push loop
        consumes them in order.  ``None`` defers to ``REPRO_JOBS``.
    max_live_windows:
        Memory bound: the tracker holds at most this many full frames;
        older windows are condensed to
        :class:`~repro.tracking.digest.FrameDigest` aggregates (see
        :class:`~repro.stream.incremental.IncrementalTracker`).
        Regions, coverage and relations are unaffected; burst-level
        reads of evicted frames are not available afterwards.

    The incremental result is bit-identical to batch tracking of the
    same surviving window frames — the guarantee the differential suite
    in ``tests/stream`` enforces.
    """
    settings = settings or FrameSettings()
    config = config or TrackerConfig()
    if settings.log_y and not config.log_extensive:
        log.info(
            "settings.log_y=True overrides config.log_extensive=False for "
            "the streaming space (matching quick_track)"
        )
        config = replace(config, log_extensive=True)

    with obsledger.run_record(
        "stream.track_windows",
        config_digest=obsledger.config_digest(settings, config),
        strict=strict,
        shards=shards,
    ), obs.span("stream.track_windows") as run_span:
        trace = validate_trace(trace, strict=strict)
        spec, windows = slice_trace(
            trace, n_windows=n_windows, window_ns=window_ns
        )
        obs.count("stream.windows_total", len(windows))

        # Pass 1: decide which windows survive, without running DBSCAN.
        # statuses[i] is ("ok", points) | ("empty", None) |
        # ("quarantined", failure); survivors keep per-window raw points
        # for the bounds computation.
        statuses: list[tuple[str, object]] = []
        window_failures: list[ItemFailure] = []
        for window in windows:
            if window.n_bursts == 0:
                obs.count("stream.windows_empty")
                statuses.append(("empty", None))
                continue
            try:
                _, points = precheck_frame_input(window, settings)
            except ReproError as exc:
                if strict:
                    raise
                failure = ItemFailure.from_exception(
                    window.label(), "window", exc
                )
                obs.count("robust.quarantined_total", stage="window")
                log.warning("quarantined window: %s", failure)
                window_failures.append(failure)
                statuses.append(("quarantined", failure))
                continue
            statuses.append(("ok", points))

        survivors = [
            (index, payload)
            for index, (status, payload) in enumerate(statuses)
            if status == "ok"
        ]
        if len(survivors) < 2:
            raise TrackingError(
                f"fewer than two windows survived "
                f"({len(survivors)} alive of {len(windows)}); widen the "
                "windows or relax the frame settings"
            )
        bounds = SpaceBounds.from_raw_points(
            [points for _, points in survivors],
            [windows[index].nranks for index, _ in survivors],
            settings.metric_names,
            reference=config.reference,
            log_extensive=config.log_extensive,
        )
        monitor = telemetry.monitor if telemetry is not None else None
        if telemetry is not None:
            telemetry.n_windows = len(windows)
            telemetry.n_empty = sum(
                1 for status, _ in statuses if status == "empty"
            )
            telemetry.n_quarantined = sum(
                1 for status, _ in statuses if status == "quarantined"
            )
        tracker = IncrementalTracker(
            config, bounds=bounds, strict=strict, monitor=monitor,
            max_live_frames=max_live_windows,
        )

        # Checkpoint replay: adopt completed windows verbatim.
        key = None
        records: list[WindowRecord] = []
        resume_from = 0
        if cache is not None:
            key = stream_key(
                trace, spec.as_dict(), settings, config, strict=strict,
                shards=shards, max_live=max_live_windows,
            )
            stored = load_checkpoint(cache, key)
            if stored is not None:
                try:
                    resume_from = _replay(
                        stored, statuses, windows, settings, tracker,
                        records, telemetry,
                    )
                except (ReproError, ValueError, IndexError) as error:
                    log.warning(
                        "stream checkpoint did not replay cleanly (%s); "
                        "starting cold", error,
                    )
                    cache.invalidate(key)
                    records = []
                    resume_from = 0
                    if telemetry is not None:
                        telemetry.reset_stream_state()
                        monitor = telemetry.monitor
                    tracker = IncrementalTracker(
                        config, bounds=bounds, strict=strict, monitor=monitor,
                        max_live_frames=max_live_windows,
                    )

        # Multi-process fan-out: prefetch the pending windows' labels
        # across workers before the (serial, order-preserving) push
        # loop.  Labels are bit-identical however they were computed,
        # so parallel prefetch cannot change the result.
        prefetched: dict[int, object] = {}
        pending_ok = [
            index
            for index in range(resume_from, len(windows))
            if statuses[index][0] == "ok"
        ]
        if resolve_jobs(jobs) > 1 and len(pending_ok) >= 2:
            cache_root = str(cache.root) if cache is not None else None
            label_results = pmap(
                _window_labels_task,
                [
                    (windows[index], settings, shards, cache_root)
                    for index in pending_ok
                ],
                jobs=jobs,
                label="stream.windows.pmap",
            )
            prefetched = dict(zip(pending_ok, label_results))

        # Pass 2: stream the remaining windows.
        for index in range(resume_from, len(windows)):
            status, payload = statuses[index]
            window = windows[index]
            if status == "empty":
                records.append(WindowRecord(window=index, status="empty"))
            elif status == "quarantined":
                records.append(
                    WindowRecord(
                        window=index, status="quarantined", failure=payload
                    )
                )
            else:
                with obs.span("stream.window", window=index):
                    started = time.perf_counter()
                    frame = _window_frame(
                        window, settings, cache,
                        shards=shards, labels=prefetched.get(index),
                    )
                    update = tracker.push(frame)
                    elapsed = time.perf_counter() - started
                    if update.pair is not None:
                        obs.observe("stream.update_seconds", elapsed)
                        obs.count("stream.updates_total")
                    if telemetry is not None:
                        telemetry.record_update(update, seconds=elapsed)
                    if obs.enabled():
                        obs.set_gauge("stream.last_window", index)
                        obs.set_gauge(
                            "stream.live_windows", tracker.n_live_frames
                        )
                        obs.set_gauge(
                            "stream.evalcache_entries",
                            tracker.cache_info()["entries"],
                        )
                    records.append(
                        WindowRecord(
                            window=index,
                            status="ok",
                            labels=frame.labels,
                            pair=update.pair,
                            pair_failure=update.failure,
                            alerts=update.alerts,
                        )
                    )
                if on_update is not None:
                    on_update(update)
            if cache is not None:
                save_checkpoint(cache, key, records)

        result = tracker.result()
        if obs.enabled():
            run_span.set(
                n_windows=len(windows),
                n_survivors=len(survivors),
                n_resumed=resume_from,
                coverage=result.coverage,
            )
            if telemetry is not None and telemetry.alerts_enabled:
                run_span.set(n_alerts=len(telemetry.alerts))
        if obsledger.active_recorder() is not None:
            obsledger.annotate(
                stream={
                    "n_windows": len(windows),
                    "n_survivors": len(survivors),
                    "n_resumed": resume_from,
                    "key_digest": (
                        obsledger.config_digest(key) if key is not None else None
                    ),
                },
                coverage=round(result.coverage, 4),
                quarantined={
                    "windows": len(window_failures),
                    "pairs": len(tracker.failures),
                },
            )
            if telemetry is not None and telemetry.alerts_enabled:
                obsledger.annotate(
                    alerts=summarize_alerts(telemetry.alerts).to_dict()
                )
        if strict:
            return result
        return PartialResult(
            value=result,
            failures=tuple(window_failures) + tracker.failures,
        )


def _replay(
    stored: list[WindowRecord],
    statuses: list[tuple[str, object]],
    windows: list[Trace],
    settings: FrameSettings,
    tracker: IncrementalTracker,
    records: list[WindowRecord],
    telemetry: WatchTelemetry | None = None,
) -> int:
    """Feed checkpointed windows back into *tracker*; return the resume index.

    The checkpoint must describe a prefix of this run's windows with the
    same per-window statuses (the key pins trace digest, spec, settings,
    config and strictness, so a mismatch means corruption); any
    disagreement raises and the caller starts cold.

    When the tracker carries a monitor, replayed pushes rebuild its
    trend state and alerts are *recomputed* (deterministically — the
    monitor is a pure function of the pushed frames) rather than
    trusted from the checkpoint, so a checkpoint written without
    alerting (or by an older format) resumes into an alerting run
    seamlessly.
    """
    for position, record in enumerate(stored):
        if record.window != position or position >= len(windows):
            raise ValueError(
                f"checkpoint window #{record.window} out of sequence"
            )
        status, _ = statuses[position]
        if record.status != status:
            raise ValueError(
                f"checkpoint window #{position} status {record.status!r} "
                f"disagrees with recomputed status {status!r}"
            )
        if record.status == "ok":
            frame = frame_from_labels(
                windows[position], settings, record.labels
            )
            precomputed = None
            if tracker.n_frames > 0:
                if record.pair is None:
                    raise ValueError(
                        f"checkpoint window #{position} lacks its pair"
                    )
                precomputed = (record.pair, record.pair_failure)
            update = tracker.push(frame, precomputed=precomputed)
            obs.count("stream.windows_resumed")
            if tracker.monitor is not None:
                record = replace(record, alerts=update.alerts)
            if telemetry is not None:
                telemetry.n_resumed += 1
                telemetry.record_update(update)
        records.append(record)
    return len(stored)
