"""repro.stream — time-windowed frames and incremental (online) tracking.

The paper's frames are "each experiment *(or time interval)*"; this
subpackage implements the time-interval half and the online tracker
that consumes such frames as they close:

- :func:`slice_trace` / :func:`concat_windows` — partition one trace
  into contiguous time windows (every burst in exactly one window,
  per-rank order preserved, concatenation round-trips);
- :class:`IncrementalTracker` + :class:`SpaceBounds` — consume frames
  one at a time, evaluating only the (previous, new) pair per step;
  with precomputed bounds the output is bit-identical to the batch
  :class:`~repro.tracking.Tracker` (enforced by ``tests/stream``);
- :func:`track_windows` — the end-to-end streaming pipeline behind
  ``repro-track watch``, with per-window obs metrics and
  cache-checkpointed resume;
- :class:`StreamMonitor` + :class:`WatchTelemetry` — the online
  monitoring layer: per-region one-step-ahead forecasts, typed
  divergence/regression/death/split/plateau alerts
  (:mod:`repro.obs.alerts`) and the watch health surface, all as a pure
  observer over the stream.

See ``docs/streaming.md``.
"""

from __future__ import annotations

from repro.stream.forecast import StreamMonitor, WatchTelemetry, track_key
from repro.stream.incremental import IncrementalTracker, SpaceBounds, TrackUpdate
from repro.stream.pipeline import track_windows, windowed_traces
from repro.stream.window import WINDOW_KEY, WindowSpec, concat_windows, slice_trace

__all__ = [
    "WINDOW_KEY",
    "WindowSpec",
    "slice_trace",
    "concat_windows",
    "SpaceBounds",
    "TrackUpdate",
    "IncrementalTracker",
    "track_windows",
    "windowed_traces",
    "StreamMonitor",
    "WatchTelemetry",
    "track_key",
]
