"""Online per-region forecasting and divergence alerting for the watch.

The monitoring half of ``repro-track watch --alerts``:

- :class:`StreamMonitor` rides along an
  :class:`~repro.stream.incremental.IncrementalTracker` as a **pure
  observer**: after every push it aggregates each tracked region's
  metrics over the new frame, compares them against one-step-ahead
  forecasts from incrementally refit trend models
  (:class:`repro.predict.online.OnlineTrend`), and emits typed
  :class:`~repro.obs.alerts.AlertRecord`\\ s.  It never feeds anything
  back into the tracker, so regions/relations/labels are bit-identical
  with monitoring on or off (enforced by ``tests/stream``).
- :class:`WatchTelemetry` is the per-run health surface: window/update
  counts, an always-on latency histogram of ``stream.update_seconds``,
  the accumulated alerts, the stderr end-of-run summary and the
  optional JSONL alert log.

Track identity
--------------
Region ids are duration-ranked and re-rank as windows arrive, so the
monitor keys its state by the *stable track key*: the eldest
``(frame, cluster)`` node of the region's component, rendered as
``"f<frame>:c<cluster>"``.  When two components merge, the merged
component keeps the elder node — the elder track's trend history
continues and the younger track simply stops appearing (a merge is not
a death).  All monitor state is a deterministic function of the pushed
frames, so a checkpointed resume that replays its prefix reconstructs
identical trends and re-emits identical alerts.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro import obs
from repro.obs.alerts import (
    AlertConfig,
    AlertRecord,
    format_alert,
    summarize_alerts,
)
from repro.obs.metrics import Histogram
from repro.predict.online import OnlineTrend
from repro.stream.window import WINDOW_KEY
from repro.tracking.trends import frame_region_metric

__all__ = ["StreamMonitor", "WatchTelemetry", "track_key"]

#: Trend families whose reselection to a plateau signals stalled growth.
_GROWING_MODELS = ("LinearModel", "PowerLawModel")

#: Absolute tolerance floor so zero-forecast metrics cannot alert on
#: floating-point dust.
_TOLERANCE_FLOOR = 1e-12


def track_key(region) -> str:
    """Stable identity of a tracked region: its eldest member node.

    ``chain_regions`` re-ranks region ids by total duration on every
    step, so the id alone cannot name a track across updates.  The
    eldest ``(frame, cluster)`` node of the component is invariant:
    nodes are never removed from a component, and a merge keeps the
    smaller (elder) node.
    """
    for frame_index, members in enumerate(region.members):
        if members:
            return f"f{frame_index}:c{min(members)}"
    raise ValueError(f"region {region.region_id} has no members")


class _MetricState:
    """One (track, metric) trend: model, extrema, and report series."""

    __slots__ = ("trend", "best_seen", "in_regression", "observed", "forecasts")

    def __init__(self, config: AlertConfig) -> None:
        self.trend = OnlineTrend(
            reselect_every=config.reselect_every,
            max_history=config.max_history,
        )
        self.best_seen: float | None = None
        self.in_regression = False
        self.observed: list[tuple[int, float]] = []
        self.forecasts: list[tuple[int, float]] = []


class _TrackState:
    """Presence/shape history of one stable track."""

    __slots__ = (
        "key", "region_id", "presence", "max_clusters",
        "alive", "split_flagged", "dead_flagged", "metrics",
    )

    def __init__(self, key: str) -> None:
        self.key = key
        self.region_id = -1
        self.presence = 0
        self.max_clusters = 0
        self.alive = False
        self.split_flagged = False
        self.dead_flagged = False
        self.metrics: dict[str, _MetricState] = {}


class StreamMonitor:
    """Per-track forecasting and alerting over a stream of updates.

    Attach via ``IncrementalTracker(..., monitor=monitor)``; the tracker
    calls :meth:`observe` after every push and carries the returned
    alerts on :attr:`TrackUpdate.alerts <repro.stream.TrackUpdate>`.
    """

    def __init__(self, config: AlertConfig | None = None) -> None:
        self.config = config or AlertConfig()
        self._tracks: dict[str, _TrackState] = {}

    @property
    def n_tracks(self) -> int:
        """Number of tracks the monitor has ever followed."""
        return len(self._tracks)

    def reset(self) -> None:
        """Drop all trend/presence state (cold restart of the stream)."""
        self._tracks.clear()

    # ------------------------------------------------------------------
    def observe(self, update) -> tuple[AlertRecord, ...]:
        """Inspect one :class:`TrackUpdate`; return the alerts it raises.

        Reads the update's frame and regions, never mutates them.  Only
        the top ``config.max_regions`` duration-ranked regions are
        monitored, which bounds the per-window forecast cost.
        """
        config = self.config
        frame = update.frame
        step = update.step
        window = int(frame.trace.scenario.get(WINDOW_KEY, step))
        alerts: list[AlertRecord] = []

        for region in update.regions[: config.max_regions]:
            key = track_key(region)
            state = self._tracks.get(key)
            if state is None:
                state = _TrackState(key)
                self._tracks[key] = state
            state.region_id = region.region_id
            members_now = region.members[step]

            if not members_now:
                if (
                    state.alive
                    and state.presence >= config.min_history
                    and not state.dead_flagged
                ):
                    state.dead_flagged = True
                    alerts.append(AlertRecord(
                        window=window,
                        step=step,
                        region_id=region.region_id,
                        track=key,
                        kind="death",
                        message=(
                            f"region vanished after {state.presence} "
                            "frame(s) of presence"
                        ),
                    ))
                state.alive = False
                continue

            if (
                state.presence >= config.min_history
                and state.max_clusters == 1
                and len(members_now) >= 2
                and not state.split_flagged
            ):
                state.split_flagged = True
                alerts.append(AlertRecord(
                    window=window,
                    step=step,
                    region_id=region.region_id,
                    track=key,
                    kind="split",
                    message=(
                        f"single-cluster region split into "
                        f"{len(members_now)} clusters"
                    ),
                ))

            for metric in config.metrics:
                alerts.extend(self._observe_metric(
                    state, metric, frame, members_now, window, step,
                    region.region_id,
                ))

            state.presence += 1
            state.max_clusters = max(state.max_clusters, len(members_now))
            state.alive = True
            state.dead_flagged = False

        if obs.enabled():
            obs.set_gauge("forecast.tracks", len(self._tracks))
            obs.count("forecast.points_total", len(config.metrics))
            for alert in alerts:
                obs.count("alerts.emitted_total", kind=alert.kind)
        return tuple(alerts)

    def _observe_metric(
        self,
        state: _TrackState,
        metric: str,
        frame,
        members_now,
        window: int,
        step: int,
        region_id: int,
    ) -> list[AlertRecord]:
        """Forecast-vs-observed checks for one (track, metric) pair."""
        config = self.config
        mstate = state.metrics.get(metric)
        if mstate is None:
            mstate = state.metrics[metric] = _MetricState(config)
        observed = frame_region_metric(frame, members_now, metric)
        alerts: list[AlertRecord] = []

        # Forecast before this observation enters the trend: a genuine
        # one-step-ahead prediction.
        point = mstate.trend.forecast(float(window))
        if point is not None:
            mstate.forecasts.append((window, point.predicted))
            if (
                np.isfinite(observed)
                and mstate.trend.n_observations >= config.min_history
            ):
                tolerance = max(
                    config.threshold * abs(point.predicted),
                    config.sigma * point.residual_std,
                    _TOLERANCE_FLOOR,
                )
                deviation = abs(observed - point.predicted)
                if deviation > tolerance:
                    alerts.append(AlertRecord(
                        window=window,
                        step=step,
                        region_id=region_id,
                        track=state.key,
                        kind="divergence",
                        metric=metric,
                        observed=observed,
                        forecast=point.predicted,
                        threshold=tolerance,
                        deviation=deviation,
                        model=point.model_kind,
                        message=(
                            f"observed {observed:.4g}, forecast "
                            f"{point.predicted:.4g} "
                            f"({point.model_kind}), deviation "
                            f"{deviation:.4g} > tolerance {tolerance:.4g}"
                        ),
                    ))

        if metric == "ipc" and np.isfinite(observed):
            best = mstate.best_seen
            if best is not None and best > 0:
                floor = best * (1.0 - config.regression_threshold)
                if observed < floor:
                    if not mstate.in_regression:
                        mstate.in_regression = True
                        drop = (best - observed) / best
                        alerts.append(AlertRecord(
                            window=window,
                            step=step,
                            region_id=region_id,
                            track=state.key,
                            kind="regression",
                            metric=metric,
                            observed=observed,
                            forecast=best,
                            threshold=config.regression_threshold,
                            deviation=drop,
                            message=(
                                f"ipc {observed:.4g} is {drop * 100:.0f}% "
                                f"below best-seen {best:.4g}"
                            ),
                        ))
                else:
                    mstate.in_regression = False
            if best is None or observed > best:
                mstate.best_seen = observed

        previous_kind = mstate.trend.model_kind
        mstate.trend.observe(float(window), observed)
        if np.isfinite(observed):
            mstate.observed.append((window, observed))
        new_kind = mstate.trend.model_kind
        if previous_kind in _GROWING_MODELS and new_kind == "PlateauModel":
            alerts.append(AlertRecord(
                window=window,
                step=step,
                region_id=region_id,
                track=state.key,
                kind="plateau",
                metric=metric,
                observed=observed,
                model=new_kind,
                message=(
                    f"trend stalled: {previous_kind} reselected to "
                    "PlateauModel"
                ),
            ))
        return alerts

    # ------------------------------------------------------------------
    def series(self) -> list[dict]:
        """Observed-vs-forecast series per (track, metric), for reports.

        One entry per (track, metric) with at least one observation:
        ``{"track", "region_id", "metric", "observed": [(window, v)...],
        "forecast": [(window, v)...]}``.  Tracks appear in first-seen
        order, metrics in config order.
        """
        out: list[dict] = []
        for state in self._tracks.values():
            for metric in self.config.metrics:
                mstate = state.metrics.get(metric)
                if mstate is None or not mstate.observed:
                    continue
                out.append({
                    "track": state.key,
                    "region_id": state.region_id,
                    "metric": metric,
                    "observed": list(mstate.observed),
                    "forecast": list(mstate.forecasts),
                })
        return out


class WatchTelemetry:
    """Health surface of one windowed watch run.

    Collects what the pipeline observed — window outcomes, live-update
    latency, alerts — independently of the gated observability switch,
    so the end-of-run summary is available on every watch.  Pass one
    instance to :func:`repro.stream.track_windows`.

    Parameters
    ----------
    alerts:
        :class:`~repro.obs.alerts.AlertConfig` to enable the online
        monitor; ``None`` (default) runs the health surface only — no
        forecasting, no alerts.
    """

    def __init__(self, *, alerts: AlertConfig | None = None) -> None:
        self.monitor = StreamMonitor(alerts) if alerts is not None else None
        self.n_windows = 0
        self.n_empty = 0
        self.n_quarantined = 0
        self.n_resumed = 0
        self.n_updates = 0
        self.update_seconds = Histogram("stream.update_seconds", ())
        self.alerts: list[AlertRecord] = []
        #: Index of the most recent window pushed (-1 before any).
        self.last_window = -1
        #: ``time.monotonic()`` of the most recent push (None before any).
        self.last_update_monotonic: float | None = None

    @property
    def alerts_enabled(self) -> bool:
        """Whether the online monitor is attached."""
        return self.monitor is not None

    def reset_stream_state(self) -> None:
        """Forget replayed/live progress (corrupt-checkpoint cold start)."""
        self.n_resumed = 0
        self.n_updates = 0
        self.update_seconds = Histogram("stream.update_seconds", ())
        self.alerts = []
        self.last_window = -1
        self.last_update_monotonic = None
        if self.monitor is not None:
            self.monitor.reset()

    def record_update(
        self, update, *, seconds: float | None = None
    ) -> None:
        """Account one tracker push (live when *seconds* is given)."""
        if seconds is not None and update.pair is not None:
            self.n_updates += 1
            self.update_seconds.observe(seconds)
        try:
            window = int(
                update.frame.trace.scenario.get(WINDOW_KEY, update.step)
            )
        except (AttributeError, TypeError, ValueError):
            window = update.step
        self.last_window = max(self.last_window, window)
        self.last_update_monotonic = time.monotonic()
        self.alerts.extend(update.alerts)

    def health(self) -> dict:
        """JSON-ready health document for the ``/healthz`` endpoint.

        Reports window/update counters, the most recent window and its
        age (the *last-window lag* an external prober watches for a
        stalled stream), latency percentiles and alert totals.
        """
        hist = self.update_seconds
        lag = (
            round(time.monotonic() - self.last_update_monotonic, 3)
            if self.last_update_monotonic is not None
            else None
        )
        payload: dict = {
            "status": "alerting" if self.alerts else "ok",
            "windows": {
                "total": self.n_windows,
                "empty": self.n_empty,
                "quarantined": self.n_quarantined,
                "resumed": self.n_resumed,
            },
            "live_updates": self.n_updates,
            "last_window": self.last_window,
            "last_update_age_s": lag,
            "update_p50_s": round(hist.p50, 6),
            "update_p99_s": round(hist.p99, 6),
        }
        if self.monitor is None:
            payload["alerts"] = None
        else:
            payload["alerts"] = summarize_alerts(self.alerts).to_dict()
        return payload

    # ------------------------------------------------------------------
    def summary_line(self) -> str:
        """The end-of-run stderr summary."""
        hist = self.update_seconds
        if hist.count:
            latency = (
                f"update p50={hist.p50 * 1e3:.2f}ms "
                f"p90={hist.p90 * 1e3:.2f}ms p99={hist.p99 * 1e3:.2f}ms"
            )
        else:
            latency = "no live updates"
        if self.monitor is None:
            alert_part = "alerts: disabled"
        elif not self.alerts:
            alert_part = "alerts: none"
        else:
            totals = summarize_alerts(self.alerts)
            kinds = " ".join(f"{kind}:{n}" for kind, n in totals.by_kind)
            alert_part = f"alerts: {totals.total} ({kinds})"
        return (
            f"watch summary: {self.n_windows} windows "
            f"({self.n_empty} empty, {self.n_quarantined} quarantined, "
            f"{self.n_resumed} resumed), {self.n_updates} live updates; "
            f"{latency}; {alert_part}"
        )

    def write_jsonl(self, path) -> Path:
        """Write the run's alerts as JSON lines (one record per line)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        lines = [json.dumps(alert.to_dict()) for alert in self.alerts]
        path.write_text(
            "\n".join(lines) + ("\n" if lines else ""), encoding="utf-8"
        )
        return path

    def format_alerts(self) -> list[str]:
        """Stderr-ready lines of every accumulated alert."""
        return [format_alert(alert) for alert in self.alerts]
