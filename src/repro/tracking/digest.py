"""Condensed frames: what bounded streaming keeps of evicted windows.

Memory-bounded streaming (``IncrementalTracker(max_live_frames=k)``)
holds at most *k* full :class:`~repro.clustering.frames.Frame` objects;
older windows are *condensed* into a :class:`FrameDigest` — the few
kilobytes of per-cluster aggregates that every downstream consumer of a
finished tracking run actually reads:

- region chaining and coverage: cluster ids, per-cluster total
  duration, cluster count;
- trend extraction (:func:`repro.tracking.trends.frame_region_metric`):
  per-cluster sums of every registered derived metric and raw counter
  plus burst counts, which reproduce ``total`` exactly and ``mean`` as
  sum-over-count (the instruction-weighted IPC mean falls out of the
  instruction and cycle sums);
- the load-imbalance rule (:func:`repro.analysis.insights.diagnose`):
  per-cluster, per-rank instruction sums and counts;
- reporting: the frame label, burst/cluster counts and the trace's
  total time and rank count.

The derived-metric registry
(:func:`repro.trace.counters.derived_metric_names`) is finite and
closed, so the capture is complete: any metric a trend can ask for is
either in the digest or a raw counter of the trace, also in the digest.

A digest's mean aggregates sum per-cluster sums instead of summing one
concatenated array, so they may differ from the live-frame value in the
last float bits (NumPy pairwise summation); the bounded-mode
differential tests use ``allclose`` for trends while regions, coverage
and pair relations — which never read burst data of evicted frames —
stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable

import numpy as np

from repro.errors import TrackingError
from repro.trace.counters import derived_metric_names

if TYPE_CHECKING:  # pragma: no cover
    from repro.clustering.frames import Frame, FrameSettings

__all__ = ["DigestCluster", "FrameDigest", "TraceDigestView"]


@dataclass(frozen=True, slots=True)
class DigestCluster:
    """Per-cluster aggregates surviving a frame's condensation.

    ``metric_sums`` maps every derived metric and raw counter name to
    the sum of its per-burst values over the cluster; ``rank_instr``
    maps each participating rank to its (instruction sum, burst count).
    """

    cluster_id: int
    total_duration: float
    n_bursts: int
    metric_sums: dict[str, float]
    rank_instr: dict[int, tuple[float, int]]


@dataclass(frozen=True, slots=True)
class TraceDigestView:
    """The sliver of a trace that reporting reads after condensation."""

    nranks: int
    total_time: float
    scenario: dict[str, Any]
    _label: str

    def label(self) -> str:
        return self._label


class FrameDigest:
    """A condensed frame: aggregates only, no burst-level data.

    Quacks like a :class:`~repro.clustering.frames.Frame` for every
    read a *finished* tracking result performs (``label``,
    ``cluster_ids``, ``cluster(cid).total_duration``, ``n_clusters``,
    ``n_points``, ``settings``, ``trace.nranks`` / ``trace.total_time``)
    — but deliberately not for pair evaluation, which always runs on
    live frames before they are evicted.
    """

    __slots__ = ("label", "settings", "trace", "n_points", "_clusters")

    def __init__(
        self,
        *,
        label: str,
        settings: "FrameSettings",
        trace: TraceDigestView,
        n_points: int,
        clusters: Iterable[DigestCluster],
    ) -> None:
        self.label = label
        self.settings = settings
        self.trace = trace
        self.n_points = int(n_points)
        self._clusters = {c.cluster_id: c for c in clusters}

    # ------------------------------------------------------------------
    @classmethod
    def from_frame(cls, frame: "Frame") -> "FrameDigest":
        """Capture everything downstream readers need from *frame*."""
        trace = frame.trace
        names = sorted(set(derived_metric_names()) | set(trace.counter_names))
        columns = {name: trace.metric(name) for name in names}
        instructions = trace.metric("instructions")
        ranks = trace.rank
        clusters = []
        for cid in frame.cluster_ids:
            cluster = frame.cluster(cid)
            idx = cluster.indices
            cluster_ranks = ranks[idx]
            cluster_instr = instructions[idx]
            rank_instr: dict[int, tuple[float, int]] = {}
            for r in np.unique(cluster_ranks):
                mask = cluster_ranks == r
                rank_instr[int(r)] = (
                    float(cluster_instr[mask].sum()), int(mask.sum())
                )
            clusters.append(
                DigestCluster(
                    cluster_id=int(cid),
                    total_duration=float(cluster.total_duration),
                    n_bursts=int(idx.size),
                    metric_sums={
                        name: float(columns[name][idx].sum()) for name in names
                    },
                    rank_instr=rank_instr,
                )
            )
        return cls(
            label=frame.label,
            settings=frame.settings,
            trace=TraceDigestView(
                nranks=int(trace.nranks),
                total_time=float(trace.total_time),
                scenario=dict(trace.scenario),
                _label=trace.label(),
            ),
            n_points=int(frame.n_points),
            clusters=clusters,
        )

    # ------------------------------------------------------------------
    @property
    def cluster_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self._clusters))

    @property
    def n_clusters(self) -> int:
        return len(self._clusters)

    def cluster(self, cluster_id: int) -> DigestCluster:
        try:
            return self._clusters[cluster_id]
        except KeyError:
            raise TrackingError(
                f"digested frame {self.label!r} has no cluster {cluster_id}"
            ) from None

    # ------------------------------------------------------------------
    def region_metric(
        self,
        member_ids: frozenset[int] | set[int],
        metric: str,
        aggregate: str = "mean",
    ) -> float:
        """The digest half of :func:`~repro.tracking.trends.frame_region_metric`.

        Same semantics as the live-frame path: ``total`` sums over all
        member bursts, ``mean`` averages per burst, and the IPC mean is
        instruction-weighted.
        """
        if not member_ids:
            return float("nan")
        clusters = [self.cluster(cid) for cid in sorted(member_ids)]

        def summed(name: str) -> float:
            try:
                return sum(c.metric_sums[name] for c in clusters)
            except KeyError:
                raise TrackingError(
                    f"metric {name!r} was not captured when frame "
                    f"{self.label!r} was condensed; available: "
                    f"{sorted(clusters[0].metric_sums)}"
                ) from None

        if aggregate == "total":
            return float(summed(metric))
        if metric == "ipc":
            cycles = summed("cycles")
            return float(summed("instructions") / cycles) if cycles else 0.0
        n_bursts = sum(c.n_bursts for c in clusters)
        return float(summed(metric) / n_bursts) if n_bursts else float("nan")

    def rank_cv(self, member_ids: frozenset[int] | set[int]) -> float:
        """Coefficient of variation of per-rank mean instructions.

        The digest half of the load-imbalance rule: per-rank means are
        reassembled from the per-cluster (sum, count) pairs, then the
        CV is taken exactly as the live-frame path takes it.
        """
        merged: dict[int, list[float]] = {}
        for cid in sorted(member_ids):
            for rank, (total, count) in self.cluster(cid).rank_instr.items():
                acc = merged.setdefault(rank, [0.0, 0.0])
                acc[0] += total
                acc[1] += count
        if not merged:
            return 0.0
        per_rank = np.asarray(
            [merged[rank][0] / merged[rank][1] for rank in sorted(merged)]
        )
        mean = per_rank.mean()
        return float(per_rank.std() / mean) if mean else 0.0

    def __repr__(self) -> str:
        return (
            f"FrameDigest(label={self.label!r}, "
            f"n_points={self.n_points}, n_clusters={self.n_clusters})"
        )
