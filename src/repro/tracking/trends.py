"""Per-region performance trend extraction (paper Figures 7, 10-12).

Once regions are tracked along the sequence, any metric can be
aggregated per region per frame, producing the trend-line series the
paper's evolution charts display: IPC evolutions, instruction totals,
cache-miss growth, and the normalised "percentage of the maximum"
correlation view of Figure 11b.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import TrackingError
from repro.tracking.digest import FrameDigest
from repro.tracking.tracker import TrackedRegion, TrackingResult

__all__ = [
    "TrendSeries",
    "frame_region_metric",
    "compute_trends",
    "top_variations",
    "normalized_to_max",
]

_AGGREGATES = ("mean", "total")


@dataclass(frozen=True)
class TrendSeries:
    """Evolution of one metric for one tracked region.

    Attributes
    ----------
    region_id:
        The tracked region.
    metric:
        Metric name the series aggregates.
    aggregate:
        ``"mean"`` (per burst; IPC is instruction-weighted) or
        ``"total"`` (summed over all member bursts).
    frame_labels:
        Human-readable scenario labels, one per frame.
    values:
        One value per frame; ``NaN`` where the region is absent.
    """

    region_id: int
    metric: str
    aggregate: str
    frame_labels: tuple[str, ...]
    values: np.ndarray

    @property
    def n_frames(self) -> int:
        """Number of scenarios in the series."""
        return int(self.values.shape[0])

    def pct_change_total(self) -> float:
        """Relative change from the first to the last finite value."""
        finite = self.values[np.isfinite(self.values)]
        if finite.size < 2 or finite[0] == 0:
            return 0.0
        return float((finite[-1] - finite[0]) / abs(finite[0]))

    def step_changes(self) -> np.ndarray:
        """Relative change between consecutive frames (NaN-propagating)."""
        values = self.values
        prev = values[:-1]
        with np.errstate(divide="ignore", invalid="ignore"):
            steps = (values[1:] - prev) / np.abs(prev)
        return steps

    def max_abs_variation(self) -> float:
        """Largest absolute relative deviation from the first value."""
        finite = self.values[np.isfinite(self.values)]
        if finite.size < 2 or finite[0] == 0:
            return 0.0
        return float(np.max(np.abs(finite - finite[0]) / abs(finite[0])))

    def __repr__(self) -> str:
        rendered = ", ".join(
            "nan" if not np.isfinite(v) else f"{v:.4g}" for v in self.values
        )
        return (
            f"TrendSeries(region={self.region_id}, metric={self.metric!r}, "
            f"values=[{rendered}])"
        )


def frame_region_metric(
    frame,
    member_ids: frozenset[int] | set[int],
    metric: str,
    aggregate: str = "mean",
) -> float:
    """Aggregate *metric* over a region's bursts in one frame.

    *member_ids* holds the region's cluster ids within *frame*; an empty
    set yields ``NaN`` (the region is absent there).  ``"mean"``
    averages per burst — IPC is instruction-weighted
    (``sum(instructions) / sum(cycles)``) so short bursts do not skew
    it — and ``"total"`` sums over all member bursts.  Shared by the
    offline trend extraction and the live stream monitor.
    """
    if not member_ids:
        return float("nan")
    if isinstance(frame, FrameDigest):
        # Condensed frame (memory-bounded streaming): the burst data is
        # gone, but the per-cluster sums reproduce both aggregates.
        return frame.region_metric(member_ids, metric, aggregate)
    indices = np.concatenate(
        [frame.cluster(cid).indices for cid in sorted(member_ids)]
    )
    if aggregate == "total":
        return float(frame.trace.metric(metric)[indices].sum())
    if metric == "ipc":
        instructions = frame.trace.metric("instructions")[indices].sum()
        cycles = frame.trace.metric("cycles")[indices].sum()
        return float(instructions / cycles) if cycles else 0.0
    return float(frame.trace.metric(metric)[indices].mean())


def _region_metric(
    result: TrackingResult,
    region: TrackedRegion,
    frame_index: int,
    metric: str,
    aggregate: str,
) -> float:
    """Aggregate *metric* over the region's bursts in one frame."""
    return frame_region_metric(
        result.frames[frame_index],
        region.members[frame_index],
        metric,
        aggregate,
    )


def compute_trends(
    result: TrackingResult,
    metric: str = "ipc",
    *,
    aggregate: str = "mean",
    only_spanning: bool = True,
) -> list[TrendSeries]:
    """Build one :class:`TrendSeries` per tracked region.

    Parameters
    ----------
    result:
        A tracking result.
    metric:
        Derived metric or raw counter name.
    aggregate:
        ``"mean"`` or ``"total"``.
    only_spanning:
        Restrict to regions present in every frame (the paper's charts
        only show those).
    """
    if aggregate not in _AGGREGATES:
        raise TrackingError(f"aggregate must be one of {_AGGREGATES}, got {aggregate!r}")
    with obs.span("tracking.trends", metric=metric, aggregate=aggregate) as trend_span:
        labels = tuple(frame.label for frame in result.frames)
        regions = result.tracked_regions if only_spanning else result.regions
        series: list[TrendSeries] = []
        for region in regions:
            values = np.asarray(
                [
                    _region_metric(result, region, index, metric, aggregate)
                    for index in range(result.n_frames)
                ]
            )
            series.append(
                TrendSeries(
                    region_id=region.region_id,
                    metric=metric,
                    aggregate=aggregate,
                    frame_labels=labels,
                    values=values,
                )
            )
        if obs.enabled():
            trend_span.set(n_series=len(series))
            obs.count("trends.series_total", len(series))
        return series


def top_variations(
    series: list[TrendSeries], min_variation: float = 0.03
) -> list[TrendSeries]:
    """Keep series whose variation exceeds *min_variation*.

    Mirrors the paper's Figure 7a filter: "only the regions with higher
    IPC variations (above 3%) are depicted".  Sorted by descending
    variation.
    """
    selected = [s for s in series if s.max_abs_variation() >= min_variation]
    return sorted(selected, key=lambda s: -s.max_abs_variation())


def normalized_to_max(series: list[TrendSeries]) -> list[TrendSeries]:
    """Rescale each series to the percentage of its own maximum.

    The paper's Figure 11b plots several metrics of one region on a
    common axis as "percentage of variation of each metric with respect
    to its maximum value for all trials".
    """
    out: list[TrendSeries] = []
    for s in series:
        finite = s.values[np.isfinite(s.values)]
        peak = np.max(np.abs(finite)) if finite.size else 0.0
        values = s.values / peak * 100.0 if peak else np.zeros_like(s.values)
        out.append(
            TrendSeries(
                region_id=s.region_id,
                metric=s.metric,
                aggregate=s.aggregate,
                frame_labels=s.frame_labels,
                values=values,
            )
        )
    return out
