"""Consistent renaming of objects across frames (paper section 3.5).

After tracking, the tool "reconstructs the input images with all object
identifiers renamed, so that all the equivalent regions keep the same
numbering and color along the whole sequence of images" — the paper's
Figure 6.  :func:`relabel_frames` applies each region's global id to
the member clusters of every frame, yielding per-point label arrays
that can be rendered or compared directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.frames import Frame
from repro.tracking.tracker import TrackingResult

__all__ = ["RelabeledFrame", "relabel_frames"]


@dataclass(frozen=True)
class RelabeledFrame:
    """One frame with tracking-consistent labels.

    Attributes
    ----------
    frame:
        The original frame.
    labels:
        Per-point global region ids (0 = noise or untracked cluster).
    mapping:
        Original cluster id -> global region id for this frame.
    """

    frame: Frame
    labels: np.ndarray
    mapping: dict[int, int]

    @property
    def region_ids(self) -> tuple[int, ...]:
        """Global region ids present in this frame, ascending."""
        return tuple(sorted(set(self.mapping.values())))

    def points_of_region(self, region_id: int) -> np.ndarray:
        """Raw metric points of one global region within this frame."""
        return self.frame.points[self.labels == region_id]


def relabel_frames(result: TrackingResult) -> list[RelabeledFrame]:
    """Rename every frame's clusters with their global region ids."""
    relabeled: list[RelabeledFrame] = []
    for frame_index, frame in enumerate(result.frames):
        mapping: dict[int, int] = {}
        for region in result.regions:
            for cid in region.members[frame_index]:
                mapping[cid] = region.region_id
        labels = np.zeros_like(frame.labels)
        for cid, region_id in mapping.items():
            labels[frame.labels == cid] = region_id
        relabeled.append(RelabeledFrame(frame=frame, labels=labels, mapping=mapping))
    return relabeled
