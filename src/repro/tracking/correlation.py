"""Correlation matrices: the common language of the four evaluators.

Every evaluator produces one or more :class:`CorrelationMatrix` objects
whose cell (i, j) expresses — with evaluator-specific semantics — the
evidence that object *i* of one frame corresponds to object *j* of the
other (or of the same frame, for the SPMD evaluator).  Cells below the
outlier threshold (5 % by default, paper section 3) are neglected.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TrackingError

__all__ = ["CorrelationMatrix"]


@dataclass(frozen=True, slots=True)
class CorrelationMatrix:
    """A labelled non-negative matrix of correspondence evidence.

    Attributes
    ----------
    row_ids / col_ids:
        Object (cluster) ids labelling rows and columns.
    values:
        ``(len(row_ids), len(col_ids))`` float array in [0, 1].
    """

    row_ids: tuple[int, ...]
    col_ids: tuple[int, ...]
    values: np.ndarray

    def __post_init__(self) -> None:
        if self.values.shape != (len(self.row_ids), len(self.col_ids)):
            raise TrackingError(
                f"matrix shape {self.values.shape} does not match labels "
                f"({len(self.row_ids)}, {len(self.col_ids)})"
            )
        if self.values.size and (self.values.min() < -1e-9):
            raise TrackingError("correlation values must be non-negative")

    def get(self, row_id: int, col_id: int) -> float:
        """Value for the (row object, column object) pair."""
        try:
            i = self.row_ids.index(row_id)
            j = self.col_ids.index(col_id)
        except ValueError as exc:
            raise KeyError(f"no cell for pair ({row_id}, {col_id})") from exc
        return float(self.values[i, j])

    def drop_below(self, threshold: float) -> "CorrelationMatrix":
        """Zero all cells strictly below *threshold* (outlier removal)."""
        values = self.values.copy()
        values[values < threshold] = 0.0
        return CorrelationMatrix(self.row_ids, self.col_ids, values)

    def nonzero_pairs(self) -> list[tuple[int, int, float]]:
        """All (row_id, col_id, value) triples with positive value."""
        rows, cols = np.nonzero(self.values)
        return [
            (self.row_ids[i], self.col_ids[j], float(self.values[i, j]))
            for i, j in zip(rows.tolist(), cols.tolist())
        ]

    def row(self, row_id: int) -> dict[int, float]:
        """Column values of one row, keyed by column id, zeros dropped."""
        i = self.row_ids.index(row_id)
        return {
            self.col_ids[j]: float(v)
            for j, v in enumerate(self.values[i])
            if v > 0
        }

    def best_match(self, row_id: int) -> tuple[int, float] | None:
        """The strongest column for *row_id*, or ``None`` if all zero."""
        candidates = self.row(row_id)
        if not candidates:
            return None
        col_id = max(candidates, key=candidates.__getitem__)
        return col_id, candidates[col_id]

    def transpose(self) -> "CorrelationMatrix":
        """Swap rows and columns."""
        return CorrelationMatrix(self.col_ids, self.row_ids, self.values.T.copy())

    def to_text(self, *, row_label: str = "A", col_label: str = "B") -> str:
        """Render like the paper's Figure 3: percentages per cell."""
        header = [" " * 6] + [f"{col_label}{cid:<4}" for cid in self.col_ids]
        lines = ["".join(header)]
        for i, rid in enumerate(self.row_ids):
            cells = [f"{row_label}{rid:<5}"]
            for j in range(len(self.col_ids)):
                value = self.values[i, j]
                cells.append(f"{value * 100:4.0f}% " if value > 0 else "   - ")
            lines.append("".join(cells))
        return "\n".join(lines)
