"""Cross-frame scale normalisation (paper section 2, Figure 1c).

Frames from different scenarios are not directly comparable: doubling
the process count roughly halves per-burst instruction counts, and each
machine spans a different IPC range.  Before tracking, the performance
scales are transformed so the objects live in one shared space:

- metrics **correlated with the process count** (extensive metrics:
  instructions, cycles, misses, duration) are weighted by the number of
  cores relative to a reference frame, cancelling the 1/N division of
  work;
- the remaining (intensive) metrics are min-max scaled to the range
  seen **across all experiments**.

Both axis kinds finally land in a [0, 1]^2 box via a min-max over the
union of the weighted values, so nearest-neighbour distances treat the
axes evenly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.frames import Frame
from repro.clustering.normalize import MinMaxScaler
from repro.errors import TrackingError
from repro.trace.counters import is_extensive_metric

__all__ = ["NormalizedSpace", "normalize_frames", "weighted_frame_points"]


def weighted_frame_points(
    points: np.ndarray,
    nranks: int,
    axes: tuple[str, ...],
    *,
    ref_ranks: int,
    log_extensive: bool = False,
) -> tuple[np.ndarray, tuple[float, ...]]:
    """Apply the extensive-metric weighting to one frame's raw points.

    Returns ``(weighted_values, axis_weights)``.  This is the per-frame
    half of :func:`normalize_frames`; the incremental tracker uses it to
    derive space bounds without holding every frame at once, and both
    paths share it so their values are bit-identical.
    """
    axis_weights = []
    for name in axes:
        if is_extensive_metric(name):
            axis_weights.append(nranks / ref_ranks)
        else:
            axis_weights.append(1.0)
    w = np.asarray(axis_weights, dtype=np.float64)
    values = points * w
    if log_extensive:
        for axis, name in enumerate(axes):
            if is_extensive_metric(name):
                column = values[:, axis]
                if np.any(column <= 0):
                    raise TrackingError(
                        f"log_extensive requires positive {name!r} values"
                    )
                values[:, axis] = np.log10(column)
    return values, tuple(float(value) for value in w)


@dataclass(frozen=True, slots=True)
class NormalizedSpace:
    """Shared normalised performance space over a frame sequence.

    Attributes
    ----------
    points:
        One ``(n_i, d)`` array per frame with all points mapped into the
        shared [0, 1]^d box.
    weights:
        Per-frame multiplicative weight applied to each axis before the
        shared min-max (1.0 for intensive axes).
    scaler:
        The shared min-max transform (fitted on the union of weighted
        points) — useful to render frames on common axes.
    axis_names:
        The clustering dimension names, (x, y, *extra).
    """

    points: tuple[np.ndarray, ...]
    weights: tuple[tuple[float, ...], ...]
    scaler: MinMaxScaler
    axis_names: tuple[str, ...]

    def frame_points(self, frame_index: int) -> np.ndarray:
        """Normalised points of frame *frame_index*."""
        return self.points[frame_index]


def normalize_frames(
    frames: list[Frame],
    *,
    reference: int = 0,
    log_extensive: bool = False,
) -> NormalizedSpace:
    """Build the shared normalised space for a frame sequence.

    Parameters
    ----------
    frames:
        The frame sequence; all frames must share their axis metrics.
    reference:
        Index of the frame whose core count anchors the extensive-metric
        weighting (weight 1.0).
    log_extensive:
        Map extensive axes through ``log10`` after weighting — matches
        clustering frames built with ``log_y`` so distances agree when a
        single frame spans decades.
    """
    if not frames:
        raise TrackingError("normalize_frames needs at least one frame")
    if not 0 <= reference < len(frames):
        raise TrackingError(f"reference index {reference} out of range")
    axes = frames[0].settings.metric_names
    for frame in frames:
        if frame.settings.metric_names != axes:
            raise TrackingError("all frames must share the same axis metrics")

    ref_ranks = frames[reference].trace.nranks
    weighted: list[np.ndarray] = []
    weights: list[tuple[float, ...]] = []
    for frame in frames:
        values, w = weighted_frame_points(
            frame.points,
            frame.trace.nranks,
            axes,
            ref_ranks=ref_ranks,
            log_extensive=log_extensive,
        )
        weighted.append(values)
        weights.append(w)

    scaler = MinMaxScaler.fit_union(weighted)
    points = tuple(scaler.transform(values) for values in weighted)
    return NormalizedSpace(
        points=points,
        weights=tuple(weights),
        scaler=scaler,
        axis_names=axes,
    )
