"""The frame-sequence tracker: pairwise relations chained into regions.

:class:`Tracker` runs the combination algorithm over every pair of
consecutive frames and links the resulting relations into *tracked
regions* — equivalence classes of objects that persist across the whole
sequence of experiments.  Regions are numbered by decreasing total
duration, the same convention clusters use, so "Region 1" is the most
time-consuming behaviour in the study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import networkx as nx

import numpy as np

from repro import obs
from repro.clustering.frames import Frame
from repro.errors import TrackingError
from repro.obs.log import get_logger
from repro.parallel.executor import SerialExecutor, get_executor, pmap
from repro.tracking.combine import PairRelations, combine_pair
from repro.tracking.evalcache import EvalCache
from repro.tracking.coverage import coverage_percent
from repro.tracking.scaling import NormalizedSpace, normalize_frames

if TYPE_CHECKING:  # runtime import stays inside run (cycle avoidance)
    from repro.robust.partial import PartialResult

__all__ = [
    "TrackerConfig",
    "TrackedRegion",
    "TrackingResult",
    "Tracker",
    "chain_regions",
]

log = get_logger(__name__)


def _combine_task(
    task: tuple[int, Frame, Frame, np.ndarray, np.ndarray, "TrackerConfig", "EvalCache | None"],
) -> PairRelations:
    """Worker-side task: combine one frame pair (module-level for pickling).

    The last element is an optional shared
    :class:`~repro.tracking.evalcache.EvalCache`; ``Tracker.run``
    attaches one only on the serial backend (shipping k-d trees to
    worker processes would cost more than rebuilding them).

    The ``tracking.pair`` span is recorded in-process on the serial
    backend; worker-process spans are not collected by the parent.
    """
    index, frame_a, frame_b, points_a, points_b, config, cache = task
    with obs.span("tracking.pair", pair=index):
        return combine_pair(
            frame_a,
            frame_b,
            points_a,
            points_b,
            outlier_threshold=config.outlier_threshold,
            spmd_threshold=config.spmd_threshold,
            sequence_threshold=config.sequence_threshold,
            max_align_ranks=config.max_align_ranks,
            use_callstack=config.use_callstack,
            use_spmd=config.use_spmd,
            use_sequence=config.use_sequence,
            cache=cache,
        )


def _empty_pair_relations(frame_a: Frame, frame_b: Frame) -> PairRelations:
    """Evidence-free relations for a quarantined pair.

    Every matrix is all-zero over the real cluster ids and the relation
    list is empty, so downstream chaining simply sees no correspondence
    across this pair (regions end on its left side and new ones start on
    its right) and reporting code keeps working.
    """
    from repro.tracking.combine import PairProvenance
    from repro.tracking.correlation import CorrelationMatrix

    ids_a, ids_b = frame_a.cluster_ids, frame_b.cluster_ids

    def zeros(rows: tuple[int, ...], cols: tuple[int, ...]) -> CorrelationMatrix:
        return CorrelationMatrix(
            row_ids=rows, col_ids=cols, values=np.zeros((len(rows), len(cols)))
        )

    return PairRelations(
        relations=(),
        displacement_ab=zeros(ids_a, ids_b),
        displacement_ba=zeros(ids_b, ids_a),
        callstack_ab=zeros(ids_a, ids_b),
        simultaneity_a=zeros(ids_a, ids_a),
        simultaneity_b=zeros(ids_b, ids_b),
        sequence_ab=None,
        provenance=PairProvenance(),
    )


def _combine_chunk_task(
    task: tuple[int, list[Frame], list[np.ndarray], "TrackerConfig", bool],
) -> tuple[list, dict[str, int]]:
    """Worker-side task: combine a run of consecutive pairs with one cache.

    ``task`` is ``(start_pair_index, frames, points, config, strict)``
    where *frames*/*points* cover pairs ``start .. start+len(frames)-2``.
    A chunk-local :class:`EvalCache` is built inside the worker, so the
    chunk's interior frames are evaluated once instead of once per pair
    — the sharing the serial backend gets from its run-wide cache,
    recovered per worker.  Returns the per-pair results in order plus
    the cache statistics (worker-side obs counters do not propagate to
    the parent, so tree builds travel in the result).
    """
    start, frames, points, config, strict = task
    cache = EvalCache()
    worker = _combine_task if strict else _combine_task_quarantine
    results = [
        worker(
            (
                start + k,
                frames[k],
                frames[k + 1],
                points[k],
                points[k + 1],
                config,
                cache,
            )
        )
        for k in range(len(frames) - 1)
    ]
    return results, cache.info()


def _combine_task_quarantine(
    task: tuple[int, Frame, Frame, np.ndarray, np.ndarray, "TrackerConfig", "EvalCache | None"],
):
    """Non-strict worker-side task: returns a failure record, never raises
    a :class:`~repro.errors.ReproError`."""
    from repro.errors import ReproError
    from repro.robust.partial import ItemFailure

    index, frame_a, frame_b = task[0], task[1], task[2]
    try:
        return _combine_task(task)
    except ReproError as exc:
        return ItemFailure.from_exception(
            f"{frame_a.label} -> {frame_b.label} (pair {index})", "pair", exc
        )


@dataclass(frozen=True, slots=True)
class TrackerConfig:
    """Tunables of the tracking pipeline.

    Attributes
    ----------
    outlier_threshold:
        Displacement matrix cells below this are neglected (paper: 5 %).
    spmd_threshold:
        Minimum mutual SPMD co-occurrence for widening relations.
    sequence_threshold:
        Minimum sequence correspondence used to split wide relations.
    max_align_ranks:
        Rank sampling cap for in-frame sequence alignments.
    reference:
        Frame index anchoring the extensive-metric weighting.
    log_extensive:
        Normalise extensive axes in log space (match frames built with
        ``log_y=True``).
    use_callstack / use_spmd / use_sequence:
        Ablation switches for the corresponding evaluators; the
        displacement evaluator always runs.  Defaults follow the paper
        (everything on).
    """

    outlier_threshold: float = 0.05
    spmd_threshold: float = 0.5
    sequence_threshold: float = 0.3
    max_align_ranks: int = 64
    reference: int = 0
    log_extensive: bool = False
    use_callstack: bool = True
    use_spmd: bool = True
    use_sequence: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.outlier_threshold < 1.0:
            raise TrackingError("outlier_threshold must be in [0, 1)")
        if not 0.0 <= self.spmd_threshold <= 1.0:
            raise TrackingError("spmd_threshold must be in [0, 1]")
        if not 0.0 <= self.sequence_threshold <= 1.0:
            raise TrackingError("sequence_threshold must be in [0, 1]")
        if self.max_align_ranks < 1:
            raise TrackingError("max_align_ranks must be >= 1")


@dataclass(frozen=True)
class TrackedRegion:
    """One behaviour tracked along the frame sequence.

    Attributes
    ----------
    region_id:
        Duration-ranked id (1 = most time-consuming region).
    members:
        Per-frame sets of cluster ids belonging to this region; an empty
        set means the region is absent from that frame.
    total_duration:
        Summed duration of all member clusters across all frames.
    """

    region_id: int
    members: tuple[frozenset[int], ...]
    total_duration: float

    @property
    def spans_all(self) -> bool:
        """Whether the region is present in every frame."""
        return all(self.members)

    @property
    def n_frames_present(self) -> int:
        """Number of frames in which the region appears."""
        return sum(1 for m in self.members if m)

    def clusters_in(self, frame_index: int) -> frozenset[int]:
        """Cluster ids of the region within one frame."""
        return self.members[frame_index]

    def __repr__(self) -> str:
        parts = [
            "{" + ",".join(map(str, sorted(m))) + "}" if m else "-"
            for m in self.members
        ]
        return f"TrackedRegion(id={self.region_id}, {' -> '.join(parts)})"


@dataclass(frozen=True)
class TrackingResult:
    """Everything the tracker produced for one frame sequence.

    Attributes
    ----------
    frames:
        The input frames.
    space:
        The shared normalised performance space.
    pair_relations:
        Per consecutive pair: relations plus evaluator diagnostics.
    regions:
        All tracked regions (including partial ones), duration-ranked.
    coverage:
        Integer coverage percentage (paper Table 2 semantics).
    """

    frames: tuple[Frame, ...]
    space: NormalizedSpace
    pair_relations: tuple[PairRelations, ...]
    regions: tuple[TrackedRegion, ...]
    coverage: int

    @property
    def tracked_regions(self) -> tuple[TrackedRegion, ...]:
        """Regions present in every frame of the sequence."""
        return tuple(region for region in self.regions if region.spans_all)

    @property
    def n_frames(self) -> int:
        """Number of frames in the study."""
        return len(self.frames)

    def region(self, region_id: int) -> TrackedRegion:
        """Look up one region by id."""
        for region in self.regions:
            if region.region_id == region_id:
                return region
        raise KeyError(f"no tracked region with id {region_id}")

    def region_of_cluster(self, frame_index: int, cluster_id: int) -> TrackedRegion | None:
        """The region that contains one frame's cluster, if any."""
        for region in self.regions:
            if cluster_id in region.members[frame_index]:
                return region
        return None

    def summary_row(self) -> dict[str, object]:
        """The paper's Table 2 row for this study."""
        return {
            "input_images": self.n_frames,
            "tracked_regions": len(self.tracked_regions),
            "coverage_pct": self.coverage,
        }


class Tracker:
    """Tracks objects across a sequence of frames.

    Parameters
    ----------
    frames:
        Two or more frames built with shared settings.
    config:
        Pipeline tunables; defaults follow the paper.
    """

    def __init__(self, frames: list[Frame], config: TrackerConfig | None = None) -> None:
        from repro.robust.validate import validate_frame

        if len(frames) < 2:
            raise TrackingError("tracking needs at least two frames")
        self.frames = list(frames)
        self.config = config or TrackerConfig()
        for frame in self.frames:
            validate_frame(frame)
        spaces = {frame.settings.metric_names for frame in self.frames}
        if len(spaces) > 1:
            raise TrackingError(
                "frames were built in different metric spaces "
                f"{sorted(spaces)}; rebuild them with shared FrameSettings"
            )

    def run(
        self, *, jobs: int | None = None, strict: bool = True
    ) -> "TrackingResult | PartialResult[TrackingResult]":
        """Execute the full pipeline and return the result.

        Parameters
        ----------
        jobs:
            Worker count for the per-pair combination fan-out (pairs
            are independent).  ``None`` defers to ``REPRO_JOBS``; 1 is
            serial.  The equivalence-region merge stays a serial
            reduce, so results are bit-identical to a serial run.
        strict:
            When true (the default), a failing pair combination aborts
            the run with its :class:`~repro.errors.ReproError`.  When
            false, the failing pair is quarantined — it contributes no
            relations, so regions simply do not connect across it — and
            the run returns a
            :class:`~repro.robust.partial.PartialResult` wrapping the
            :class:`TrackingResult` plus the failure records.
        """
        from repro.obs import ledger as obsledger
        from repro.robust.partial import ItemFailure, PartialResult

        config = self.config
        with obsledger.run_record(
            "tracking.run",
            n_frames=len(self.frames),
            config_digest=obsledger.config_digest(config),
            strict=strict,
        ) as ledger_rec, obs.span(
            "tracking.run", n_frames=len(self.frames)
        ) as run_span:
            with obs.span("tracking.normalize"):
                space = normalize_frames(
                    self.frames,
                    reference=config.reference,
                    log_extensive=config.log_extensive,
                )
            # Caches are never pickled across process boundaries.  On
            # the serial backend a single run-wide cache is shared by
            # every task; on the process backend consecutive pairs are
            # grouped into one chunk per worker, each chunk building a
            # worker-local cache, so interior frames of a chunk are
            # still evaluated once instead of once per pair.
            n_pairs = len(self.frames) - 1
            executor = get_executor(jobs, n_tasks=n_pairs)
            if isinstance(executor, SerialExecutor):
                cache = EvalCache()
                tasks = [
                    (
                        index,
                        self.frames[index],
                        self.frames[index + 1],
                        space.points[index],
                        space.points[index + 1],
                        config,
                        cache,
                    )
                    for index in range(n_pairs)
                ]
                raw = pmap(
                    _combine_task if strict else _combine_task_quarantine,
                    tasks,
                    jobs=jobs,
                    label="tracking.pairs.pmap",
                )
                obs.count("tracking.tree_builds_total", cache.tree_builds)
            else:
                chunk_tasks = []
                for chunk in np.array_split(
                    np.arange(n_pairs), min(executor.jobs, n_pairs)
                ):
                    if not len(chunk):
                        continue
                    start, stop = int(chunk[0]), int(chunk[-1]) + 1
                    chunk_tasks.append(
                        (
                            start,
                            self.frames[start : stop + 1],
                            list(space.points[start : stop + 1]),
                            config,
                            strict,
                        )
                    )
                chunked = pmap(
                    _combine_chunk_task,
                    chunk_tasks,
                    jobs=jobs,
                    label="tracking.pairs.pmap",
                )
                raw = []
                tree_builds = 0
                for results, cache_info in chunked:
                    raw.extend(results)
                    tree_builds += cache_info["tree_builds"]
                obs.count("tracking.tree_builds_total", tree_builds)
            failures: list[ItemFailure] = []
            pair_relations: list[PairRelations] = []
            for index, item in enumerate(raw):
                if isinstance(item, ItemFailure):
                    failures.append(item)
                    obs.count("robust.quarantined_total", stage="pair")
                    log.warning("quarantined pair: %s", item)
                    item = _empty_pair_relations(
                        self.frames[index], self.frames[index + 1]
                    )
                pair_relations.append(item)
            with obs.span("tracking.chain"):
                regions = self._chain(pair_relations)
            coverage = coverage_percent(regions, self.frames)
            if obs.enabled():
                run_span.set(n_regions=len(regions), coverage=coverage)
                obs.count(
                    "tracking.relations_total",
                    sum(len(pair.relations) for pair in pair_relations),
                )
                obs.count("tracking.regions_total", len(regions))
                obs.set_gauge("tracking.coverage_pct", coverage)
                log.debug(
                    "tracked %d frames into %d regions (%d%% coverage)",
                    len(self.frames), len(regions), coverage,
                )
            result = TrackingResult(
                frames=tuple(self.frames),
                space=space,
                pair_relations=tuple(pair_relations),
                regions=tuple(regions),
                coverage=coverage,
            )
            if ledger_rec is not None:
                ledger_rec.annotate(
                    coverage=round(coverage, 4),
                    n_regions=len(regions),
                    quarantined={"pairs": len(failures)},
                )
            if strict:
                return result
            return PartialResult(value=result, failures=tuple(failures))

    def _chain(self, pair_relations: list[PairRelations]) -> list[TrackedRegion]:
        """Chain the pairwise relations into whole-sequence regions."""
        return chain_regions(self.frames, pair_relations)


def chain_regions(
    frames: list[Frame], pair_relations: list[PairRelations]
) -> list[TrackedRegion]:
    """Chain pairwise relations into duration-ranked whole-sequence regions.

    Shared by the batch :class:`Tracker` and the incremental
    :class:`repro.stream.IncrementalTracker`: given identical frames and
    pair relations both produce identical regions (including the
    tie-breaking order of equal-duration regions, which follows the
    graph component iteration order).
    """
    graph = nx.Graph()
    for frame_index, frame in enumerate(frames):
        for cid in frame.cluster_ids:
            graph.add_node((frame_index, cid))
    for pair_index, pair in enumerate(pair_relations):
        for relation in pair.relations:
            members = [("L", cid) for cid in relation.left] + [
                ("R", cid) for cid in relation.right
            ]
            # Connect every member of a relation to the first member:
            # a star keeps the component identical to the full clique.
            if len(members) < 2:
                continue
            anchor_side, anchor_cid = members[0]
            anchor = (
                pair_index if anchor_side == "L" else pair_index + 1,
                anchor_cid,
            )
            for side, cid in members[1:]:
                node = (pair_index if side == "L" else pair_index + 1, cid)
                graph.add_edge(anchor, node)

    regions: list[TrackedRegion] = []
    for component in nx.connected_components(graph):
        members: list[set[int]] = [set() for _ in frames]
        for frame_index, cid in component:
            members[frame_index].add(cid)
        total = sum(
            frames[frame_index].cluster(cid).total_duration
            for frame_index, cid in component
        )
        regions.append(
            TrackedRegion(
                region_id=0,  # assigned below after ranking
                members=tuple(frozenset(m) for m in members),
                total_duration=total,
            )
        )
    regions.sort(key=lambda region: -region.total_duration)
    return [
        TrackedRegion(
            region_id=index + 1,
            members=region.members,
            total_duration=region.total_duration,
        )
        for index, region in enumerate(regions)
    ]
