"""Human-readable tracking reports ("who-is-who").

The BSC tool's textual output: for every pair of consecutive frames,
the relations found and the evaluator evidence behind them; for the
whole sequence, the tracked regions with their per-frame members, time
shares and source references.  Benches and the CLI print these.
"""

from __future__ import annotations

import numpy as np

from repro._util import format_pct
from repro.tracking.combine import PairRelations, Relation
from repro.tracking.tracker import TrackingResult
from repro.tracking.trends import compute_trends

__all__ = ["who_is_who", "relation_evidence", "region_summary"]


def relation_evidence(pair: PairRelations, relation: Relation) -> list[str]:
    """Explain one relation with the evaluator values supporting it."""
    lines: list[str] = []
    for cid_a in sorted(relation.left):
        for cid_b in sorted(relation.right):
            parts: list[str] = []
            try:
                disp = pair.displacement_ab.get(cid_a, cid_b)
            except KeyError:
                disp = 0.0
            try:
                rev = pair.displacement_ba.get(cid_b, cid_a)
            except KeyError:
                rev = 0.0
            if disp > 0:
                parts.append(f"displacement {disp * 100:.0f}%")
            if rev > 0:
                parts.append(f"reciprocal {rev * 100:.0f}%")
            try:
                stack = pair.callstack_ab.get(cid_a, cid_b)
            except KeyError:
                stack = 0.0
            if stack > 0:
                parts.append(f"call stack {stack * 100:.0f}%")
            if pair.sequence_ab is not None:
                try:
                    seq = pair.sequence_ab.get(cid_a, cid_b)
                except KeyError:
                    seq = 0.0
                if seq > 0:
                    parts.append(f"sequence {seq * 100:.0f}%")
            if parts:
                lines.append(f"    A{cid_a} -> B{cid_b}: " + ", ".join(parts))
    # Within-frame SPMD evidence for grouped sides.
    for side, ids, matrix in (
        ("A", sorted(relation.left), pair.simultaneity_a),
        ("B", sorted(relation.right), pair.simultaneity_b),
    ):
        for i, cid in enumerate(ids):
            for other in ids[i + 1 :]:
                try:
                    mutual = min(matrix.get(cid, other), matrix.get(other, cid))
                except KeyError:
                    continue
                if mutual > 0:
                    lines.append(
                        f"    {side}{cid} ~ {side}{other}: simultaneous "
                        f"{mutual * 100:.0f}% of steps"
                    )
    return lines


def who_is_who(result: TrackingResult, *, evidence: bool = True) -> str:
    """Full textual report of a tracking result."""
    lines: list[str] = []
    lines.append(
        f"Tracked {len(result.tracked_regions)} regions across "
        f"{result.n_frames} frames (coverage {result.coverage}%)"
    )
    lines.append("")
    lines.append("Frames:")
    for index, frame in enumerate(result.frames):
        lines.append(
            f"  [{index}] {frame.label}: {frame.n_clusters} objects, "
            f"{frame.n_points} bursts"
        )
    lines.append("")
    lines.append("Pairwise relations:")
    for index, pair in enumerate(result.pair_relations):
        lines.append(
            f"  frame {index} -> frame {index + 1} "
            f"({result.frames[index].label} -> {result.frames[index + 1].label}):"
        )
        for relation in pair.relations:
            if not relation.left and not relation.right:
                continue
            kind = (
                "univocal"
                if relation.is_univocal
                else "wide" if relation.is_wide else "grouped"
            )
            confidence = pair.confidence(relation)
            record = pair.provenance_of(relation)
            lines.append(
                f"    {relation!r}  [{kind}, confidence {confidence * 100:.0f}%, "
                f"by {record.proposed_by}]"
            )
            if evidence:
                lines.extend("  " + line for line in relation_evidence(pair, relation))
    lines.append("")
    lines.append("Tracked regions:")
    lines.extend(region_summary(result))
    return "\n".join(lines)


def region_summary(result: TrackingResult) -> list[str]:
    """Per-region summary lines: members, time share, code references."""
    total_time = sum(frame.trace.total_time for frame in result.frames)
    ipc_series = {s.region_id: s for s in compute_trends(result, "ipc")}
    lines: list[str] = []
    for region in result.regions:
        chain = " -> ".join(
            "{" + ",".join(map(str, sorted(members))) + "}" if members else "-"
            for members in region.members
        )
        share = region.total_duration / total_time if total_time else 0.0
        refs: set[str] = set()
        for frame_index, members in enumerate(region.members):
            for cid in members:
                refs |= result.frames[frame_index].cluster(cid).callpaths
        line = (
            f"  Region {region.region_id}: {chain}  "
            f"({share * 100:.1f}% of time)"
        )
        series = ipc_series.get(region.region_id)
        if series is not None and np.isfinite(series.values).sum() >= 2:
            line += f", IPC {format_pct(series.pct_change_total())}"
        lines.append(line)
        for ref in sorted(refs):
            lines.append(f"      ref: {ref}")
    return lines
