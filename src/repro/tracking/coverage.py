"""The coverage metric of the paper's Table 2.

Coverage measures how much of the identifiable structure the tracker
resolved: the number of regions tracked across the whole sequence over
the maximum number of identifiable objects in any input frame.  100 %
means every object found a univocal correspondence chain; lower values
mean nearby objects had to be grouped into wide relations.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.clustering.frames import Frame
    from repro.tracking.tracker import TrackedRegion

__all__ = ["coverage_percent", "max_identifiable_objects"]


def max_identifiable_objects(frames: Sequence["Frame"]) -> int:
    """Largest number of relevant objects seen in any single frame."""
    return max((frame.n_clusters for frame in frames), default=0)


def coverage_percent(
    regions: Sequence["TrackedRegion"], frames: Sequence["Frame"]
) -> int:
    """Integer coverage percentage (floored, as the paper reports it).

    ``regions`` should be the regions tracked across the full sequence
    (see :attr:`repro.tracking.tracker.TrackingResult.tracked_regions`).
    """
    identifiable = max_identifiable_objects(frames)
    if identifiable == 0:
        return 0
    tracked = sum(1 for region in regions if region.spans_all)
    return int(math.floor(100.0 * tracked / identifiable))
