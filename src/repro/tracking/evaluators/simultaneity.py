"""SPMD simultaneity evaluator.

Paper section 3.2.  In an SPMD application every process executes the
same logical phase at the same step; if two *different* clusters appear
simultaneously on different ranks, they are very likely the same code
region whose performance diverged across processes (imbalance,
bimodality).  The evaluator aligns the per-rank cluster sequences of
one experiment with the star MSA and converts column co-occurrence into
a within-frame equivalence matrix.

One matrix is produced per frame (it relates a frame's objects to each
other, not across frames); the combination algorithm uses it to widen
relations with objects the displacement evaluator left unmatched.
"""

from __future__ import annotations

import numpy as np

from repro.alignment.msa import MultipleAlignment, star_align
from repro.alignment.spmd import simultaneity_matrix
from repro.clustering.frames import Frame
from repro.tracking.correlation import CorrelationMatrix

__all__ = ["EVALUATOR", "frame_alignment", "simultaneity_for_frame"]

#: Provenance tag of this evaluator (see ``repro.tracking.combine``).
EVALUATOR = "simultaneity"


def frame_alignment(frame: Frame, *, max_ranks: int = 64, seed: int = 0) -> MultipleAlignment:
    """Star-align the per-rank cluster sequences of *frame*.

    For very wide runs, aligning a uniform sample of *max_ranks* ranks
    is statistically sufficient (SPMD sequences are near-identical) and
    keeps the evaluator linear in practice.
    """
    sequences = {
        rank: seq for rank, seq in frame.rank_sequences.items() if seq.size > 0
    }
    if not sequences:
        # Degenerate frame: produce an empty single-row alignment.
        return MultipleAlignment(matrix=np.zeros((1, 0), dtype=np.int64), keys=(0,))
    ranks = sorted(sequences)
    if len(ranks) > max_ranks:
        rng = np.random.default_rng(seed)
        chosen = np.sort(rng.choice(len(ranks), size=max_ranks, replace=False))
        ranks = [ranks[i] for i in chosen]
    return star_align({rank: sequences[rank] for rank in ranks})


def simultaneity_for_frame(
    frame: Frame,
    *,
    max_ranks: int = 64,
    seed: int = 0,
    alignment: MultipleAlignment | None = None,
) -> CorrelationMatrix:
    """Within-frame co-occurrence probabilities of the frame's clusters.

    Cell (i, j) estimates ``P(cluster j executes in some rank | cluster
    i executes in another rank at the same aligned step)``, conditioned
    on cluster *i* (so the matrix need not be symmetric).

    *alignment* optionally supplies a precomputed
    :func:`frame_alignment` of the same frame (with the same *max_ranks*
    and *seed*) so callers that also need the alignment elsewhere — the
    per-run :class:`~repro.tracking.evalcache.EvalCache` — build it only
    once.
    """
    ids = frame.cluster_ids
    if not ids:
        return CorrelationMatrix((), (), np.zeros((0, 0)))
    if alignment is None:
        alignment = frame_alignment(frame, max_ranks=max_ranks, seed=seed)
    values = simultaneity_matrix(alignment, ids)
    return CorrelationMatrix(ids, ids, values)
