"""Call-stack reference evaluator.

Paper section 3.3.  Every burst knows the source location it started
from; two clusters from different experiments that share no source
reference cannot be the same code region.  Cell (i, j) is the fraction
of A_i's bursts whose call path also occurs among B_j's bursts — the
evaluator is primarily a *pruning* device that discards relations the
noisier heuristics propose between unrelated code.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.frames import Frame
from repro.tracking.correlation import CorrelationMatrix

__all__ = ["EVALUATOR", "callstack_matrix"]

#: Provenance tag of this evaluator (see ``repro.tracking.combine``).
EVALUATOR = "callstack"


def callstack_matrix(frame_a: Frame, frame_b: Frame) -> CorrelationMatrix:
    """Fraction of A_i bursts whose call path appears in B_j.

    Call paths are compared by their canonical string form, so the
    comparison is meaningful across traces with independent interning
    tables.
    """
    ids_a = frame_a.cluster_ids
    ids_b = frame_b.cluster_ids
    values = np.zeros((len(ids_a), len(ids_b)), dtype=np.float64)

    # Per A-cluster histogram of call-path strings.
    trace_a = frame_a.trace
    path_strings_a = [str(path) for path in trace_a.callstacks]
    for i, cid_a in enumerate(ids_a):
        indices = frame_a.cluster(cid_a).indices
        if indices.size == 0:
            continue
        path_ids, counts = np.unique(
            trace_a.callpath_id[indices], return_counts=True
        )
        total = indices.size
        for j, cid_b in enumerate(ids_b):
            paths_b = frame_b.cluster(cid_b).callpaths
            shared = sum(
                int(count)
                for pid, count in zip(path_ids.tolist(), counts.tolist())
                if path_strings_a[pid] in paths_b
            )
            if shared:
                values[i, j] = shared / total
    return CorrelationMatrix(ids_a, ids_b, values)
