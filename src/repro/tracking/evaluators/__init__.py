"""The four tracking evaluators (paper sections 3.1-3.4).

Each evaluator inspects a different property of the computing regions
and emits :class:`~repro.tracking.correlation.CorrelationMatrix`
evidence; the combination algorithm in
:mod:`repro.tracking.combine` fuses them.
"""

from __future__ import annotations

from repro.tracking.evaluators import callstack, displacement, sequence, simultaneity
from repro.tracking.evaluators.callstack import callstack_matrix
from repro.tracking.evaluators.displacement import displacement_matrix
from repro.tracking.evaluators.sequence import sequence_matrix
from repro.tracking.evaluators.simultaneity import frame_alignment, simultaneity_for_frame

#: Provenance tags of the four evaluators, in combination (priority)
#: order: displacement seeds, callstack prunes/rescues, sequence
#: rescues/splits, simultaneity widens.
EVALUATORS: tuple[str, ...] = (
    displacement.EVALUATOR,
    callstack.EVALUATOR,
    sequence.EVALUATOR,
    simultaneity.EVALUATOR,
)

__all__ = [
    "EVALUATORS",
    "displacement_matrix",
    "simultaneity_for_frame",
    "frame_alignment",
    "callstack_matrix",
    "sequence_matrix",
]
