"""Execution-sequence evaluator.

Paper section 3.4.  Unless control flow changes, experiments execute
the same phases in the same chronological order.  The evaluator aligns
the consensus execution sequences of two experiments and reads
correspondences off the aligned columns.  Because cluster ids differ
between experiments, the sequences cannot be compared symbol by symbol
directly: the matchings discovered by the earlier evaluators act as
*pivots* — symbols known to correspond score as matches — and the
alignment then forces the in-between symbols into correspondence by
position (the paper's Figure 5).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.alignment.memo import memoised_align
from repro.alignment.pairwise import GAP
from repro.errors import TrackingError
from repro.tracking.correlation import CorrelationMatrix

__all__ = ["EVALUATOR", "sequence_matrix", "align_with_pivots"]

#: Provenance tag of this evaluator (see ``repro.tracking.combine``).
EVALUATOR = "sequence"


def align_with_pivots(
    consensus_a: np.ndarray,
    consensus_b: np.ndarray,
    pivots: dict[int, int],
) -> list[tuple[int, int]]:
    """Align two consensus sequences treating pivot pairs as matches.

    Both sequences are remapped into one shared token alphabet: a pivot
    pair ``a -> b`` maps both symbols to a common token so the aligner
    scores them as equal; non-pivot symbols receive tokens that are
    unique per (side, symbol), so they align only through position.

    Returns the aligned ``(a_symbol, b_symbol)`` pairs of the non-gap
    columns, in sequence order.
    """
    a = np.asarray(consensus_a, dtype=np.int64)
    b = np.asarray(consensus_b, dtype=np.int64)
    if a.ndim != 1 or b.ndim != 1:
        raise TrackingError("consensus sequences must be 1-D")

    token_of_a: dict[int, int] = {}
    token_of_b: dict[int, int] = {}
    next_token = 0
    for a_sym, b_sym in pivots.items():
        token_of_a[int(a_sym)] = next_token
        token_of_b[int(b_sym)] = next_token
        next_token += 1
    for sym in np.unique(a):
        if int(sym) not in token_of_a:
            token_of_a[int(sym)] = next_token
            next_token += 1
    for sym in np.unique(b):
        if int(sym) not in token_of_b:
            token_of_b[int(sym)] = next_token
            next_token += 1

    tokens_a = np.asarray([token_of_a[int(s)] for s in a], dtype=np.int64)
    tokens_b = np.asarray([token_of_b[int(s)] for s in b], dtype=np.int64)
    alignment = memoised_align(tokens_a, tokens_b)

    pairs: list[tuple[int, int]] = []
    pos_a = 0
    pos_b = 0
    for col in range(alignment.length):
        ta = alignment.aligned_a[col]
        tb = alignment.aligned_b[col]
        if ta != GAP and tb != GAP:
            pairs.append((int(a[pos_a]), int(b[pos_b])))
        if ta != GAP:
            pos_a += 1
        if tb != GAP:
            pos_b += 1
    return pairs


def sequence_matrix(
    consensus_a: np.ndarray,
    consensus_b: np.ndarray,
    ids_a: tuple[int, ...],
    ids_b: tuple[int, ...],
    pivots: dict[int, int],
) -> CorrelationMatrix:
    """Correlation matrix from pivot-anchored sequence alignment.

    Cell (i, j) is the fraction of A_i's occurrences in the consensus
    sequence that align with an occurrence of B_j.
    """
    pairs = align_with_pivots(consensus_a, consensus_b, pivots)
    occurrences: dict[int, int] = defaultdict(int)
    together: dict[tuple[int, int], int] = defaultdict(int)
    for a_sym, b_sym in pairs:
        occurrences[a_sym] += 1
        together[(a_sym, b_sym)] += 1
    values = np.zeros((len(ids_a), len(ids_b)), dtype=np.float64)
    for i, cid_a in enumerate(ids_a):
        total = occurrences.get(cid_a, 0)
        if total == 0:
            continue
        for j, cid_b in enumerate(ids_b):
            count = together.get((cid_a, cid_b), 0)
            if count:
                values[i, j] = count / total
    return CorrelationMatrix(ids_a, ids_b, values)
