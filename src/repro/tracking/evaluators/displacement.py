"""Displacement evaluator: nearest-neighbour cross-classification.

Paper section 3.1.  Objects generally drift smoothly through the
performance space, so classifying every burst of frame A onto the
nearest burst of frame B (in the shared normalised space) reveals which
B object each A object has likely become.  Cell (i, j) of the resulting
matrix is the fraction of A_i's bursts whose nearest B neighbour
belongs to B_j — exactly the percentages of the paper's Figure 3.

The evaluator is deliberately fallible for long jumps (the points land
on whatever object happens to be nearest); the call-stack and sequence
evaluators correct those cases downstream.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.clustering.frames import Frame
from repro.errors import TrackingError
from repro.tracking.correlation import CorrelationMatrix

__all__ = [
    "EVALUATOR",
    "displacement_matrix",
    "displacement_matrix_reference",
    "frame_tree",
]

#: Provenance tag of this evaluator (see ``repro.tracking.combine``).
EVALUATOR = "displacement"


def frame_tree(frame: Frame, points: np.ndarray) -> cKDTree | None:
    """The k-d tree over a frame's *clustered* points, or None if empty.

    Exposed so callers evaluating many pairs against the same frame
    (``Tracker.run``, ``track_windows``) can build each frame's tree
    once and pass it through ``displacement_matrix(..., tree_b=...)``.
    """
    clustered = np.flatnonzero(frame.labels != 0)
    if clustered.size == 0:
        return None
    return cKDTree(points[clustered])


def _id_lookup(ids: tuple[int, ...], labels: np.ndarray) -> np.ndarray:
    """Map a label value to its position in *ids* (-1 when absent)."""
    size = max(max(ids), int(labels.max(initial=0))) + 1
    lookup = np.full(size, -1, dtype=np.int64)
    lookup[np.asarray(ids, dtype=np.int64)] = np.arange(len(ids))
    return lookup


def displacement_matrix(
    frame_a: Frame,
    frame_b: Frame,
    points_a: np.ndarray,
    points_b: np.ndarray,
    *,
    tree_b: cKDTree | None = None,
) -> CorrelationMatrix:
    """Cross-classify frame A's bursts onto frame B's objects.

    Parameters
    ----------
    frame_a, frame_b:
        The two frames (for labels and cluster inventories).
    points_a, points_b:
        The frames' points in the **shared normalised space** (from
        :func:`repro.tracking.scaling.normalize_frames`), aligned with
        each frame's burst order.
    tree_b:
        Optional pre-built :func:`frame_tree` of ``frame_b`` — callers
        that evaluate many pairs against one frame pass it to avoid
        rebuilding the tree per pair.

    Returns
    -------
    CorrelationMatrix
        Rows = A's cluster ids, columns = B's cluster ids, cell (i, j) =
        fraction of A_i bursts nearest to a B_j burst.  Rows of empty
        clusters are zero.

    Notes
    -----
    One k-NN query over all of A's clustered bursts plus one flattened
    2-D bincount over (row, column) pairs; bit-identical to
    :func:`displacement_matrix_reference` because per-point nearest
    neighbours are independent of query batching and each cell divides
    the same two integers.
    """
    if points_a.shape[0] != frame_a.n_points:
        raise TrackingError("points_a does not match frame_a's burst count")
    if points_b.shape[0] != frame_b.n_points:
        raise TrackingError("points_b does not match frame_b's burst count")

    ids_a = frame_a.cluster_ids
    ids_b = frame_b.cluster_ids
    values = np.zeros((len(ids_a), len(ids_b)), dtype=np.float64)
    if not ids_a or not ids_b:
        return CorrelationMatrix(ids_a, ids_b, values)

    labels_b = frame_b.labels
    clustered_b = np.flatnonzero(labels_b != 0)
    if clustered_b.size == 0:
        return CorrelationMatrix(ids_a, ids_b, values)
    tree = tree_b if tree_b is not None else cKDTree(points_b[clustered_b])

    rows = _id_lookup(ids_a, frame_a.labels)[frame_a.labels]
    sel = np.flatnonzero(rows >= 0)
    if not sel.size:
        return CorrelationMatrix(ids_a, ids_b, values)
    _, nearest = tree.query(points_a[sel], k=1, workers=-1)
    nearest_labels = labels_b[clustered_b[nearest]]
    cols = _id_lookup(ids_b, nearest_labels)[nearest_labels]

    n_cols = len(ids_b)
    rows = rows[sel]
    hit = cols >= 0
    counts = np.bincount(
        rows[hit] * n_cols + cols[hit], minlength=len(ids_a) * n_cols
    ).reshape(len(ids_a), n_cols)
    totals = np.bincount(rows, minlength=len(ids_a))
    occupied = totals > 0
    values[occupied] = counts[occupied] / totals[occupied, None]
    return CorrelationMatrix(ids_a, ids_b, values)


def displacement_matrix_reference(
    frame_a: Frame,
    frame_b: Frame,
    points_a: np.ndarray,
    points_b: np.ndarray,
) -> CorrelationMatrix:
    """Per-cluster loop formulation: the executable specification.

    :func:`displacement_matrix` must agree with this bit-for-bit; the
    regression suite enforces that.
    """
    if points_a.shape[0] != frame_a.n_points:
        raise TrackingError("points_a does not match frame_a's burst count")
    if points_b.shape[0] != frame_b.n_points:
        raise TrackingError("points_b does not match frame_b's burst count")

    ids_a = frame_a.cluster_ids
    ids_b = frame_b.cluster_ids
    values = np.zeros((len(ids_a), len(ids_b)), dtype=np.float64)
    if not ids_a or not ids_b:
        return CorrelationMatrix(ids_a, ids_b, values)

    labels_b = frame_b.labels
    clustered_b = np.flatnonzero(labels_b != 0)
    if clustered_b.size == 0:
        return CorrelationMatrix(ids_a, ids_b, values)
    tree = cKDTree(points_b[clustered_b])

    col_index = {cid: j for j, cid in enumerate(ids_b)}
    labels_a = frame_a.labels
    for i, cid in enumerate(ids_a):
        member_points = points_a[labels_a == cid]
        if member_points.shape[0] == 0:
            continue
        _, nearest = tree.query(member_points, k=1, workers=-1)
        nearest_labels = labels_b[clustered_b[nearest]]
        counts = np.bincount(nearest_labels, minlength=max(ids_b) + 1)
        total = member_points.shape[0]
        for cid_b, j in col_index.items():
            if counts[cid_b]:
                values[i, j] = counts[cid_b] / total
    return CorrelationMatrix(ids_a, ids_b, values)
