"""Combination of the four evaluators into pairwise relations.

Paper section 3: the evaluators "have to cooperate to complement the
correspondences that a given one might fail to discern".  For a pair of
consecutive frames (A, B) the combination proceeds:

1. **Seed** with the displacement evaluator, run reciprocally (A onto B
   and B onto A) with outlier filtering.
2. **Prune** candidate edges whose clusters share no call-stack
   reference — imprecisions of the distance heuristic.
3. **Widen** with the SPMD evaluator: objects left unmatched get
   attached to a simultaneous sibling's relation (the paper's
   ``A5 == B5 u B13`` example).
4. Connected components of the resulting bipartite graph are the
   relations ``P_i == Q_i``.
5. **Refine** wide relations (several objects on both sides) with the
   execution-sequence evaluator, splitting them when pivot-anchored
   alignment can tell the members apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import networkx as nx
import numpy as np

from repro import obs
from repro.clustering.frames import Frame
from repro.tracking.correlation import CorrelationMatrix
from repro.tracking.evaluators import callstack as _callstack
from repro.tracking.evaluators import displacement as _displacement
from repro.tracking.evaluators import sequence as _sequence
from repro.tracking.evaluators import simultaneity as _simultaneity
from repro.tracking.evaluators.callstack import callstack_matrix
from repro.tracking.evaluators.displacement import displacement_matrix
from repro.tracking.evaluators.sequence import sequence_matrix

if TYPE_CHECKING:  # runtime import stays inside combine_pair (cycle avoidance)
    from repro.tracking.evalcache import EvalCache

__all__ = [
    "Relation",
    "RelationProvenance",
    "PairProvenance",
    "PairRelations",
    "combine_pair",
    "UNMATCHED",
]

DISPLACEMENT = _displacement.EVALUATOR
CALLSTACK = _callstack.EVALUATOR
SEQUENCE = _sequence.EVALUATOR
SIMULTANEITY = _simultaneity.EVALUATOR

#: Provenance tag of relations no evaluator could propose (an object
#: that appears or vanishes between the frames; one side is empty).
UNMATCHED = "unmatched"

#: Proposer resolution order: the displacement evaluator seeds, the
#: call-stack and sequence evaluators rescue orphans, the simultaneity
#: evaluator only ever widens an existing relation.  A relation's
#: *proposing* evaluator is the highest-priority evaluator among its
#: supporting edges, so it is unique by construction.
_PROPOSER_PRIORITY = (DISPLACEMENT, CALLSTACK, SEQUENCE, SIMULTANEITY)


@dataclass(frozen=True)
class RelationProvenance:
    """Why one relation exists: the evaluator evidence that built it.

    Attributes
    ----------
    proposed_by:
        The single evaluator that established the relation (highest
        priority among its edges), or :data:`UNMATCHED` for degenerate
        relations with an empty side.
    edge_counts:
        ``(evaluator, n_edges)`` pairs — how many candidate-graph edges
        each evaluator contributed inside this relation.
    events:
        Audit trail of the non-seed actions that shaped the relation:
        ``"rescue:callstack"``, ``"rescue:sequence"``,
        ``"attach:simultaneity"``, ``"split:sequence"``.
    support:
        ``(evaluator, score)`` pairs — each evaluator's strongest
        evidence value inside the relation, in [0, 1].
    """

    proposed_by: str
    edge_counts: tuple[tuple[str, int], ...] = ()
    events: tuple[str, ...] = ()
    support: tuple[tuple[str, float], ...] = ()

    @property
    def evaluators(self) -> tuple[str, ...]:
        """Evaluators that contributed at least one edge."""
        return tuple(name for name, _ in self.edge_counts)

    def support_of(self, evaluator: str) -> float:
        """The evaluator's strongest evidence value (0.0 if absent)."""
        for name, value in self.support:
            if name == evaluator:
                return value
        return 0.0

    def as_dict(self) -> dict[str, object]:
        """JSON-serialisable form."""
        return {
            "proposed_by": self.proposed_by,
            "edge_counts": {name: n for name, n in self.edge_counts},
            "events": list(self.events),
            "support": {name: value for name, value in self.support},
        }


@dataclass(frozen=True)
class PairProvenance:
    """Aggregate heuristic activity over one frame pair.

    Attributes
    ----------
    relations:
        One :class:`RelationProvenance` per relation, aligned with
        :attr:`PairRelations.relations`.
    proposed:
        Candidate edges proposed by the displacement evaluator
        (before call-stack pruning).
    pruned:
        Displacement candidates vetoed by the call-stack evaluator.
    rescued_callstack / rescued_sequence:
        Orphan objects rescued by the respective evaluator.
    widened:
        Orphans attached to a sibling by the simultaneity evaluator.
    splits:
        Wide relations split apart by the sequence evaluator.
    """

    relations: tuple[RelationProvenance, ...] = ()
    proposed: int = 0
    pruned: int = 0
    rescued_callstack: int = 0
    rescued_sequence: int = 0
    widened: int = 0
    splits: int = 0

    def contribution_counts(self) -> dict[str, int]:
        """Total candidate-graph edges per evaluator over the pair."""
        totals: dict[str, int] = {}
        for record in self.relations:
            for name, n in record.edge_counts:
                totals[name] = totals.get(name, 0) + n
        return totals

    def as_dict(self) -> dict[str, object]:
        """JSON-serialisable form."""
        return {
            "proposed": self.proposed,
            "pruned": self.pruned,
            "rescued_callstack": self.rescued_callstack,
            "rescued_sequence": self.rescued_sequence,
            "widened": self.widened,
            "splits": self.splits,
            "relations": [record.as_dict() for record in self.relations],
        }


@dataclass(frozen=True, slots=True)
class Relation:
    """One correspondence ``P_i == Q_i`` between object partitions.

    ``left`` holds cluster ids of the earlier frame, ``right`` of the
    later frame.  Either side may be empty for objects that could not be
    related at all (they appear or vanish between the frames).
    """

    left: frozenset[int]
    right: frozenset[int]

    @property
    def is_univocal(self) -> bool:
        """True when the relation pairs exactly one object with one."""
        return len(self.left) == 1 and len(self.right) == 1

    @property
    def is_wide(self) -> bool:
        """True when both sides hold several objects (ambiguous)."""
        return len(self.left) > 1 and len(self.right) > 1

    def __repr__(self) -> str:
        left = "{" + ",".join(map(str, sorted(self.left))) + "}"
        right = "{" + ",".join(map(str, sorted(self.right))) + "}"
        return f"{left}=={right}"


@dataclass(frozen=True)
class PairRelations:
    """Relations between one pair of consecutive frames plus diagnostics.

    Attributes
    ----------
    relations:
        The final relations, including degenerate ones with an empty
        side.
    displacement_ab / displacement_ba:
        Reciprocal displacement matrices (after outlier filtering).
    callstack_ab:
        Call-stack overlap matrix A -> B.
    simultaneity_a / simultaneity_b:
        Within-frame SPMD co-occurrence matrices.
    sequence_ab:
        Sequence-evaluator matrix (pivot-anchored), or ``None`` when no
        pivots were available.
    provenance:
        Heuristic attribution of the pair (``None`` only for
        hand-built instances; :func:`combine_pair` always fills it).
    """

    relations: tuple[Relation, ...]
    displacement_ab: CorrelationMatrix
    displacement_ba: CorrelationMatrix
    callstack_ab: CorrelationMatrix
    simultaneity_a: CorrelationMatrix
    simultaneity_b: CorrelationMatrix
    sequence_ab: CorrelationMatrix | None = None
    provenance: PairProvenance | None = None

    def provenance_of(self, relation: Relation) -> RelationProvenance:
        """The provenance record of one of this pair's relations."""
        if self.provenance is not None:
            for candidate, record in zip(self.relations, self.provenance.relations):
                if candidate == relation:
                    return record
        return RelationProvenance(proposed_by=UNMATCHED)

    def mapping(self) -> dict[int, frozenset[int]]:
        """Map each left cluster id to the right ids of its relation."""
        out: dict[int, frozenset[int]] = {}
        for relation in self.relations:
            for cid in relation.left:
                out[cid] = relation.right
        return out

    def _cross_support(self, cid_a: int, cid_b: int) -> float:
        """Strongest cross-frame evidence for one (A, B) object pair."""
        values = []
        for matrix, row, col in (
            (self.displacement_ab, cid_a, cid_b),
            (self.displacement_ba, cid_b, cid_a),
            (self.sequence_ab, cid_a, cid_b),
        ):
            if matrix is None:
                continue
            try:
                values.append(matrix.get(row, col))
            except KeyError:
                continue
        return max(values, default=0.0)

    def _spmd_support(self, matrix: CorrelationMatrix, cid: int,
                      siblings: frozenset[int]) -> float:
        """Strongest within-frame simultaneity tying *cid* to a sibling."""
        values = []
        for other in siblings:
            if other == cid:
                continue
            try:
                values.append(
                    min(matrix.get(cid, other), matrix.get(other, cid))
                )
            except KeyError:
                continue
        return max(values, default=0.0)

    def confidence(self, relation: Relation) -> float:
        """Evidence strength of one relation in [0, 1].

        Every member object contributes its best support: the strongest
        cross-frame evidence (displacement in either direction, or the
        sequence evaluator) towards any counterpart, or — for objects
        attached purely through SPMD widening — the strongest mutual
        simultaneity with a sibling.  The relation's confidence is the
        mean member support, so one weakly-attached object drags an
        otherwise solid relation down visibly.
        """
        if not relation.left or not relation.right:
            return 0.0
        supports: list[float] = []
        for cid_a in relation.left:
            cross = max(
                (self._cross_support(cid_a, cid_b) for cid_b in relation.right),
                default=0.0,
            )
            spmd = self._spmd_support(self.simultaneity_a, cid_a, relation.left)
            supports.append(max(cross, spmd))
        for cid_b in relation.right:
            cross = max(
                (self._cross_support(cid_a, cid_b) for cid_a in relation.left),
                default=0.0,
            )
            spmd = self._spmd_support(self.simultaneity_b, cid_b, relation.right)
            supports.append(max(cross, spmd))
        return float(np.mean(supports)) if supports else 0.0


def _component_relations(graph: nx.Graph) -> list[Relation]:
    """Extract relations from the bipartite candidate graph."""
    relations: list[Relation] = []
    for component in nx.connected_components(graph):
        left = frozenset(cid for side, cid in component if side == "A")
        right = frozenset(cid for side, cid in component if side == "B")
        relations.append(Relation(left=left, right=right))
    return relations


def _callstacks_compatible(frame_x: Frame, cid_x: int, frame_y: Frame, cid_y: int) -> bool:
    """Whether two clusters share at least one call-stack reference."""
    return bool(
        frame_x.cluster(cid_x).callpaths & frame_y.cluster(cid_y).callpaths
    )


def _callstack_rescue(graph: nx.Graph, frame_a: Frame, frame_b: Frame) -> int:
    """Pair leftover objects whose call-stack reference is unambiguous.

    When displacements fail completely — the NAS BT case, where growing
    problem sizes move every cluster two orders of magnitude — an object
    with no candidate edges can still be matched if exactly one object
    of the other frame shares its source references.  Returns the number
    of edges added.
    """
    added = 0
    for side, frame, other_frame, other_side in (
        ("A", frame_a, frame_b, "B"),
        ("B", frame_b, frame_a, "A"),
    ):
        for cid in frame.cluster_ids:
            if graph.degree((side, cid)) > 0:
                continue
            candidates = [
                other
                for other in other_frame.cluster_ids
                if _callstacks_compatible(frame, cid, other_frame, other)
            ]
            if len(candidates) == 1:
                graph.add_edge(
                    (side, cid), (other_side, candidates[0]), evaluator=CALLSTACK
                )
                added += 1
    return added


def _sequence_rescue(
    graph: nx.Graph,
    sequence: CorrelationMatrix,
    frame_a: Frame,
    frame_b: Frame,
) -> int:
    """Match remaining orphans through the execution-sequence evidence.

    For each still-unmatched object, adds an edge towards the strongest
    call-stack-compatible sequence correspondence.  Returns the number
    of edges added.
    """
    added = 0
    for cid_a in frame_a.cluster_ids:
        if graph.degree(("A", cid_a)) > 0:
            continue
        row = {
            cid_b: value
            for cid_b, value in sequence.row(cid_a).items()
            if _callstacks_compatible(frame_a, cid_a, frame_b, cid_b)
        }
        if row:
            best = max(row, key=row.__getitem__)
            graph.add_edge(("A", cid_a), ("B", best), evaluator=SEQUENCE)
            added += 1
    transposed = sequence.transpose()
    for cid_b in frame_b.cluster_ids:
        if graph.degree(("B", cid_b)) > 0:
            continue
        row = {
            cid_a: value
            for cid_a, value in transposed.row(cid_b).items()
            if _callstacks_compatible(frame_a, cid_a, frame_b, cid_b)
        }
        if row:
            best = max(row, key=row.__getitem__)
            graph.add_edge(("A", best), ("B", cid_b), evaluator=SEQUENCE)
            added += 1
    return added


def _attach_orphans(
    graph: nx.Graph,
    side: str,
    frame: Frame,
    simultaneity: CorrelationMatrix,
    threshold: float,
) -> int:
    """SPMD widening: connect unmatched objects to simultaneous siblings.

    An orphan (no cross-frame edge) is attached to the sibling cluster
    of its own frame with the strongest mutual simultaneity above
    *threshold*, provided the sibling is itself matched and both share a
    call-stack reference.  Returns the number of orphans attached.
    """
    attached = 0
    ids = frame.cluster_ids
    for cid in ids:
        node = (side, cid)
        if graph.degree(node) > 0:
            continue
        best_partner = None
        best_value = threshold
        for other in ids:
            if other == cid:
                continue
            if graph.degree((side, other)) == 0:
                continue
            mutual = min(simultaneity.get(cid, other), simultaneity.get(other, cid))
            if mutual >= best_value and _callstacks_compatible(
                frame, cid, frame, other
            ):
                best_partner = other
                best_value = mutual
        if best_partner is not None:
            graph.add_edge(node, (side, best_partner), evaluator=SIMULTANEITY)
            attached += 1
    return attached


def _split_wide_relations(
    relations: list[Relation],
    sequence: CorrelationMatrix,
    frame_a: Frame,
    frame_b: Frame,
) -> tuple[list[Relation], set[Relation], int]:
    """Use sequence correspondences to break ambiguous wide relations.

    A split is accepted only when the sequence evidence partitions the
    relation into two or more sub-relations that each keep at least one
    object per side and remain call-stack compatible; otherwise the
    original wide relation is preserved (grouping in doubt, as the paper
    prescribes).  Returns the new relation list, the set of relations
    produced by a split (for provenance), and the split count.
    """
    out: list[Relation] = []
    split_pieces: set[Relation] = set()
    splits = 0
    for relation in relations:
        if not relation.is_wide:
            out.append(relation)
            continue
        sub = nx.Graph()
        for cid in relation.left:
            sub.add_node(("A", cid))
        for cid in relation.right:
            sub.add_node(("B", cid))
        for cid_a in relation.left:
            for cid_b in relation.right:
                try:
                    evidence = sequence.get(cid_a, cid_b)
                except KeyError:
                    evidence = 0.0
                if evidence > 0 and _callstacks_compatible(
                    frame_a, cid_a, frame_b, cid_b
                ):
                    sub.add_edge(("A", cid_a), ("B", cid_b))
        pieces = _component_relations(sub)
        valid = (
            len(pieces) > 1
            and all(piece.left and piece.right for piece in pieces)
        )
        if valid:
            splits += 1
            split_pieces.update(pieces)
        out.extend(pieces if valid else [relation])
    obs.count("tracking.relations_split", splits, evaluator=SEQUENCE)
    return out, split_pieces, splits


def _max_cell(matrix: CorrelationMatrix | None, pairs) -> float:
    """Strongest matrix value over (row, col) id pairs (0.0 if none)."""
    best = 0.0
    if matrix is None:
        return best
    for row, col in pairs:
        try:
            value = matrix.get(row, col)
        except KeyError:
            continue
        if value > best:
            best = value
    return best


def _relation_provenance(
    relation: Relation,
    graph: nx.Graph,
    split_pieces: set[Relation],
    disp_ab: CorrelationMatrix,
    disp_ba: CorrelationMatrix,
    cs_ab: CorrelationMatrix | None,
    spmd_a: CorrelationMatrix | None,
    spmd_b: CorrelationMatrix | None,
    sequence_ab: CorrelationMatrix | None,
) -> RelationProvenance:
    """Attribute one final relation to the evaluators that built it.

    Matrices of disabled (ablated) evaluators are passed as ``None`` so
    their evidence is never claimed in the attribution.
    """
    nodes = {("A", cid) for cid in relation.left} | {
        ("B", cid) for cid in relation.right
    }
    counts: dict[str, int] = {}
    for u, v, data in graph.edges(nodes, data=True):
        if u in nodes and v in nodes:
            evaluator = data.get("evaluator", DISPLACEMENT)
            counts[evaluator] = counts.get(evaluator, 0) + 1
    proposed_by = next(
        (name for name in _PROPOSER_PRIORITY if counts.get(name)), UNMATCHED
    )

    events: list[str] = []
    if counts.get(CALLSTACK):
        events.append(f"rescue:{CALLSTACK}")
    if counts.get(SEQUENCE):
        events.append(f"rescue:{SEQUENCE}")
    if counts.get(SIMULTANEITY):
        events.append(f"attach:{SIMULTANEITY}")
    if relation in split_pieces:
        events.append(f"split:{SEQUENCE}")

    cross = [(a, b) for a in relation.left for b in relation.right]
    support: list[tuple[str, float]] = []
    disp = max(
        _max_cell(disp_ab, cross),
        _max_cell(disp_ba, [(b, a) for a, b in cross]),
    )
    if disp > 0:
        support.append((DISPLACEMENT, disp))
    stack = _max_cell(cs_ab, cross)
    if stack > 0:
        support.append((CALLSTACK, stack))
    seq = _max_cell(sequence_ab, cross)
    if seq > 0:
        support.append((SEQUENCE, seq))
    spmd = max(
        _max_cell(
            spmd_a,
            [(a, b) for a in relation.left for b in relation.left if a != b],
        ),
        _max_cell(
            spmd_b,
            [(a, b) for a in relation.right for b in relation.right if a != b],
        ),
    )
    if spmd > 0:
        support.append((SIMULTANEITY, spmd))

    return RelationProvenance(
        proposed_by=proposed_by,
        edge_counts=tuple(sorted(counts.items())),
        events=tuple(events),
        support=tuple(support),
    )


def combine_pair(
    frame_a: Frame,
    frame_b: Frame,
    points_a: np.ndarray,
    points_b: np.ndarray,
    *,
    outlier_threshold: float = 0.05,
    spmd_threshold: float = 0.5,
    sequence_threshold: float = 0.3,
    max_align_ranks: int = 64,
    use_callstack: bool = True,
    use_spmd: bool = True,
    use_sequence: bool = True,
    cache: "EvalCache | None" = None,
) -> PairRelations:
    """Run the full combination algorithm on one pair of frames.

    Parameters
    ----------
    frame_a, frame_b:
        Consecutive frames.
    points_a, points_b:
        The frames' points in the shared normalised space.
    outlier_threshold:
        Displacement cells below this fraction are neglected (paper: 5 %).
    spmd_threshold:
        Minimum mutual co-occurrence for SPMD widening.
    sequence_threshold:
        Minimum sequence-alignment correspondence used when splitting
        wide relations.
    max_align_ranks:
        Rank-sampling cap for the in-frame alignments.
    use_callstack / use_spmd / use_sequence:
        Ablation switches disabling individual evaluators (the
        displacement evaluator always runs — it seeds the relations).
        With everything off, the algorithm degrades to raw reciprocal
        nearest-neighbour matching, which is what the ablation benches
        measure the heuristics' contributions against.
    cache:
        Optional per-run :class:`~repro.tracking.evalcache.EvalCache`
        reusing per-frame artefacts (k-d trees, star alignments) across
        pairs.  Without one, a private per-pair cache still removes the
        in-pair duplication.  Caching never changes results — every
        cached value is the return of the identical uncached call.
    """
    from repro.tracking.evalcache import EvalCache

    if cache is None:
        cache = EvalCache()
    with obs.span("tracking.evaluator.displacement"):
        disp_ab = displacement_matrix(
            frame_a, frame_b, points_a, points_b,
            tree_b=cache.tree(frame_b, points_b),
        ).drop_below(outlier_threshold)
        disp_ba = displacement_matrix(
            frame_b, frame_a, points_b, points_a,
            tree_b=cache.tree(frame_a, points_a),
        ).drop_below(outlier_threshold)
    with obs.span("tracking.evaluator.callstack"):
        cs_ab = callstack_matrix(frame_a, frame_b)
    with obs.span("tracking.evaluator.simultaneity"):
        spmd_a = cache.simultaneity(frame_a, max_align_ranks)
        spmd_b = cache.simultaneity(frame_b, max_align_ranks)

    def compatible(cid_a: int, cid_b: int) -> bool:
        if not use_callstack:
            return True
        return _callstacks_compatible(frame_a, cid_a, frame_b, cid_b)

    graph = nx.Graph()
    for cid in frame_a.cluster_ids:
        graph.add_node(("A", cid))
    for cid in frame_b.cluster_ids:
        graph.add_node(("B", cid))
    proposed = 0
    pruned = 0
    for cid_a, cid_b, _ in disp_ab.nonzero_pairs():
        proposed += 1
        if compatible(cid_a, cid_b):
            graph.add_edge(("A", cid_a), ("B", cid_b), evaluator=DISPLACEMENT)
        else:
            pruned += 1
    for cid_b, cid_a, _ in disp_ba.nonzero_pairs():
        proposed += 1
        if compatible(cid_a, cid_b):
            graph.add_edge(("A", cid_a), ("B", cid_b), evaluator=DISPLACEMENT)
        else:
            pruned += 1
    if obs.enabled():
        obs.count("tracking.links_proposed", proposed, evaluator=DISPLACEMENT)
        obs.count("tracking.links_pruned", pruned, evaluator=CALLSTACK)
        obs.count(
            "tracking.links_confirmed",
            graph.number_of_edges(),
            evaluator=DISPLACEMENT,
        )

    rescued_callstack = 0
    rescued_sequence = 0
    widened = 0
    splits = 0
    if use_callstack:
        rescued_callstack = _callstack_rescue(graph, frame_a, frame_b)
        obs.count("tracking.links_rescued", rescued_callstack, evaluator=CALLSTACK)
    if use_spmd:
        widened = _attach_orphans(graph, "B", frame_b, spmd_b, spmd_threshold)
        widened += _attach_orphans(graph, "A", frame_a, spmd_a, spmd_threshold)
        obs.count("tracking.links_widened", widened, evaluator=SIMULTANEITY)

    relations = _component_relations(graph)

    # Sequence refinement needs pivots: take the univocal relations.
    pivots = {
        next(iter(rel.left)): next(iter(rel.right))
        for rel in relations
        if rel.is_univocal
    }
    has_orphans = any(not rel.left or not rel.right for rel in relations)
    sequence_ab: CorrelationMatrix | None = None
    split_pieces: set[Relation] = set()
    if use_sequence and pivots and (
        has_orphans or any(rel.is_wide for rel in relations)
    ):
        with obs.span("tracking.evaluator.sequence", n_pivots=len(pivots)):
            consensus_a = cache.consensus(frame_a, max_align_ranks)
            consensus_b = cache.consensus(frame_b, max_align_ranks)
            sequence_ab = sequence_matrix(
                consensus_a,
                consensus_b,
                frame_a.cluster_ids,
                frame_b.cluster_ids,
                pivots,
            ).drop_below(sequence_threshold)
            if has_orphans:
                rescued_sequence = _sequence_rescue(
                    graph, sequence_ab, frame_a, frame_b
                )
                obs.count(
                    "tracking.links_rescued", rescued_sequence, evaluator=SEQUENCE
                )
                if rescued_sequence:
                    relations = _component_relations(graph)
            relations, split_pieces, splits = _split_wide_relations(
                relations, sequence_ab, frame_a, frame_b
            )

    relations.sort(key=lambda rel: (min(rel.left, default=1 << 30), min(rel.right, default=1 << 30)))
    provenance = PairProvenance(
        relations=tuple(
            _relation_provenance(
                relation, graph, split_pieces,
                disp_ab, disp_ba,
                cs_ab if use_callstack else None,
                spmd_a if use_spmd else None,
                spmd_b if use_spmd else None,
                sequence_ab,
            )
            for relation in relations
        ),
        proposed=proposed,
        pruned=pruned,
        rescued_callstack=rescued_callstack,
        rescued_sequence=rescued_sequence,
        widened=widened,
        splits=splits,
    )
    return PairRelations(
        relations=tuple(relations),
        displacement_ab=disp_ab,
        displacement_ba=disp_ba,
        callstack_ab=cs_ab,
        simultaneity_a=spmd_a,
        simultaneity_b=spmd_b,
        sequence_ab=sequence_ab,
        provenance=provenance,
    )
