"""Object tracking across performance-space frames (the paper's core).

Given a sequence of :class:`~repro.clustering.frames.Frame` objects —
one per execution scenario — the tracker finds, for every pair of
consecutive frames A and B, a maximal set of relations
``P_i == Q_i`` between partitions of A's and B's objects (paper
section 3), then chains the pairwise relations into *tracked regions*
spanning the whole sequence.

Four evaluators cooperate:

1. :mod:`~repro.tracking.evaluators.displacement` — nearest-neighbour
   cross-classification in the scale-normalised performance space;
2. :mod:`~repro.tracking.evaluators.simultaneity` — SPMD co-occurrence
   within each frame (recovers objects the displacements missed);
3. :mod:`~repro.tracking.evaluators.callstack` — source-reference
   pruning of impossible matches;
4. :mod:`~repro.tracking.evaluators.sequence` — pivot-based execution
   sequence alignment, used to split ambiguous wide relations.

:class:`Tracker` orchestrates the pipeline and returns a
:class:`TrackingResult` with the tracked regions, consistently renamed
frames, the coverage metric of the paper's Table 2 and per-region trend
series for arbitrary metrics.
"""

from __future__ import annotations

from repro.tracking.combine import PairRelations, Relation, combine_pair
from repro.tracking.correlation import CorrelationMatrix
from repro.tracking.coverage import coverage_percent
from repro.tracking.relabel import RelabeledFrame, relabel_frames
from repro.tracking.report import region_summary, relation_evidence, who_is_who
from repro.tracking.scaling import NormalizedSpace, normalize_frames
from repro.tracking.tracker import TrackedRegion, Tracker, TrackerConfig, TrackingResult
from repro.tracking.trends import (
    TrendSeries,
    compute_trends,
    normalized_to_max,
    top_variations,
)

__all__ = [
    "CorrelationMatrix",
    "NormalizedSpace",
    "normalize_frames",
    "Relation",
    "PairRelations",
    "combine_pair",
    "Tracker",
    "TrackerConfig",
    "TrackingResult",
    "TrackedRegion",
    "RelabeledFrame",
    "relabel_frames",
    "TrendSeries",
    "compute_trends",
    "normalized_to_max",
    "top_variations",
    "coverage_percent",
    "who_is_who",
    "relation_evidence",
    "region_summary",
]
