"""Per-run cache of frame-keyed evaluator intermediates.

The combination algorithm recomputes several expensive artefacts that
depend only on a single frame, not on the pair being evaluated:

- the k-d tree over a frame's clustered points (displacement queries);
- the star MSA of the frame's per-rank sequences (``frame_alignment``),
  which both the simultaneity matrix and the consensus sequence are
  derived from — without caching it is built *twice per frame per
  pair*;
- the simultaneity matrix and consensus sequence themselves.

In a frame sequence every interior frame participates in two pairs, so
a per-run cache roughly halves the evaluator work on top of removing
the in-pair duplication.  Values are cached by object identity (frames
and point arrays are immutable for the duration of a run) and the cache
pins strong references to the keyed objects so ids cannot be recycled.

Caching never changes results: every entry is the return value of the
exact call the uncached code path would make, reused verbatim — the
differential suites (batch vs incremental, serial vs ``jobs=2``) hold
bit-for-bit.

The cache is intentionally **not** sent across process boundaries
(pickling k-d trees to workers would cost more than rebuilding them).
On the serial backend ``Tracker.run`` attaches one shared cache to all
tasks; on the process backend it groups consecutive pairs into
per-worker chunks, and each chunk builds its own cache inside the
worker — interior frames of a chunk are still evaluated once, and the
workers report their ``tree_builds`` back so the parent can account
for the sharing (``tracking.tree_builds_total``).
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.clustering.frames import Frame
from repro.tracking.correlation import CorrelationMatrix
from repro.tracking.evaluators.displacement import frame_tree
from repro.tracking.evaluators.simultaneity import (
    frame_alignment,
    simultaneity_for_frame,
)

__all__ = ["EvalCache"]


class EvalCache:
    """Memo of per-frame evaluator artefacts for one tracking run.

    Not thread-safe; each run (or each worker) owns its private
    instance.  All getters compute through the canonical evaluator
    functions on a miss, so cached and uncached paths are the same
    code.
    """

    def __init__(self) -> None:
        self._trees: dict[tuple[int, int], cKDTree | None] = {}
        self._alignments: dict[tuple[int, int], object] = {}
        self._simultaneity: dict[tuple[int, int], CorrelationMatrix] = {}
        self._consensus: dict[tuple[int, int], np.ndarray] = {}
        # id-keyed entries are only valid while the keyed objects live;
        # pin them so CPython cannot recycle an id mid-run.
        self._pins: dict[int, object] = {}
        self.hits = 0
        self.misses = 0
        #: k-d tree constructions (the dominant per-frame artefact);
        #: tracked separately so tests can assert sharing across pairs.
        self.tree_builds = 0

    def _pin(self, obj: object) -> int:
        key = id(obj)
        self._pins[key] = obj
        return key

    # ------------------------------------------------------------------
    def tree(self, frame: Frame, points: np.ndarray) -> cKDTree | None:
        """Cached :func:`frame_tree` over (*frame*, *points*)."""
        key = (self._pin(frame), self._pin(points))
        try:
            value = self._trees[key]
            self.hits += 1
        except KeyError:
            value = self._trees[key] = frame_tree(frame, points)
            self.misses += 1
            self.tree_builds += 1
        return value

    def alignment(self, frame: Frame, max_ranks: int):
        """Cached :func:`frame_alignment` of *frame*."""
        key = (self._pin(frame), int(max_ranks))
        try:
            value = self._alignments[key]
            self.hits += 1
        except KeyError:
            value = self._alignments[key] = frame_alignment(
                frame, max_ranks=max_ranks
            )
            self.misses += 1
        return value

    def simultaneity(self, frame: Frame, max_ranks: int) -> CorrelationMatrix:
        """Cached :func:`simultaneity_for_frame` of *frame*."""
        key = (self._pin(frame), int(max_ranks))
        try:
            value = self._simultaneity[key]
            self.hits += 1
        except KeyError:
            value = self._simultaneity[key] = simultaneity_for_frame(
                frame,
                max_ranks=max_ranks,
                alignment=self.alignment(frame, max_ranks),
            )
            self.misses += 1
        return value

    def consensus(self, frame: Frame, max_ranks: int) -> np.ndarray:
        """Cached consensus sequence of *frame*'s alignment."""
        from repro.alignment.spmd import consensus_sequence

        key = (self._pin(frame), int(max_ranks))
        try:
            value = self._consensus[key]
            self.hits += 1
        except KeyError:
            value = self._consensus[key] = consensus_sequence(
                self.alignment(frame, max_ranks)
            )
            self.misses += 1
        return value

    # ------------------------------------------------------------------
    def retain(self, frames: list[Frame]) -> None:
        """Drop every entry not keyed on one of *frames*.

        Streaming trackers call this after each step: only the newest
        frame's artefacts are reusable (as the next pair's left side),
        so the cache stays O(1) in stream length.
        """
        keep = {id(frame) for frame in frames}
        tree_keys = [k for k in self._trees if k[0] in keep]
        self._trees = {k: self._trees[k] for k in tree_keys}
        self._alignments = {
            k: v for k, v in self._alignments.items() if k[0] in keep
        }
        self._simultaneity = {
            k: v for k, v in self._simultaneity.items() if k[0] in keep
        }
        self._consensus = {
            k: v for k, v in self._consensus.items() if k[0] in keep
        }
        pinned = keep | {k[1] for k in tree_keys}
        self._pins = {i: obj for i, obj in self._pins.items() if i in pinned}

    def info(self) -> dict[str, int]:
        """Cache statistics (for tests and diagnostics)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "tree_builds": self.tree_builds,
            "entries": (
                len(self._trees)
                + len(self._alignments)
                + len(self._simultaneity)
                + len(self._consensus)
            ),
        }
