"""repro.shard — hierarchical cluster-then-merge for burst-scale frames.

At the 10^7–10^8-burst traces the roadmap targets, clustering every
frame whole is the remaining wall-time bottleneck: the grid-bucketed
DBSCAN is single-process, so one frame cannot use more than one core.
This subpackage shards a frame's bursts by rank, clusters each shard
independently (parallelisable over :func:`repro.parallel.pmap`
workers), and merges the shard clusterings by cross-shard
eps-reachability into labels that are **bit-identical** to the
whole-frame DBSCAN — the property the Hypothesis differential suite in
``tests/property/test_prop_shard.py`` enforces.

- :func:`shard_assignment` — partition ranks into contiguous
  near-equal blocks, the sharding a rank-distributed collector would
  produce naturally;
- :func:`sharded_dbscan` — the three-stage cluster-then-merge engine
  (per-shard clusterings, cross-shard core completion, global merge);
- :class:`ShardClustering` — one shard's intermediate labelling, kept
  inspectable for the merge edge-case tests.

See ``docs/performance.md`` (sharding section) for the equivalence
argument and the scaling curves.
"""

from __future__ import annotations

from repro.shard.cluster import ShardClustering, shard_assignment, sharded_dbscan

__all__ = ["ShardClustering", "shard_assignment", "sharded_dbscan"]
