"""Sharded DBSCAN: cluster per rank-shard, merge to whole-frame labels.

The merge is exact, not approximate.  Three facts make that possible:

1. **Core status completes across shards.**  The shards partition the
   frame's points, so a point's global eps-neighbour count is the sum
   of its per-shard counts: ``count(p) = sum_s count_s(p)``.  Stage 1
   computes each shard's internal clustering (whose core masks are a
   lower bound on the global ones — a point core among its own shard's
   points only gains neighbours globally), and stage 2 completes the
   remaining candidates by querying every shard's k-d tree and summing
   the counts.  The resulting mask equals
   :meth:`repro.clustering.dbscan.DBSCAN._core_mask` bit-for-bit:
   both count the same inclusive-eps ball around every point.

2. **Labels are a pure function of the core mask.**  The grid engine's
   :meth:`~repro.clustering.dbscan.DBSCAN._label` derives the final
   labelling from (points, eps, min_pts, core mask) alone — connected
   components of the cores under eps-adjacency, labelled by the rank
   of their minimum core index, borders claimed by the smallest
   neighbouring label.  Stage 3 feeds the completed global core mask
   through exactly that code path, so cross-shard eps-reachability
   (clusters straddling a shard boundary, border points claimable from
   two shards) resolves exactly as the whole-frame run resolves it.

3. **Rank-sharding is spatially blind, and that is fine.**  Shards are
   blocks of ranks, not blocks of metric space — desynchronised ranks
   (Afzal et al., arXiv:2205.13963) put same-behaviour bursts in
   different shards, which is exactly why the merge must re-examine
   cross-shard reachability globally instead of stitching shard labels
   along a spatial frontier.

Stages 1 and 2 are embarrassingly parallel over shards and fan out via
:func:`repro.parallel.pmap`; stage 3 is a serial reduce.  Degenerate
geometries whose cell grid would overflow fall back to the reference
engine exactly like :meth:`DBSCAN.fit` does.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro import obs
from repro.clustering.dbscan import (
    DBSCAN,
    DBSCANResult,
    _empty_result,
    _Grid,
    _validate_points,
    dbscan_reference,
)
from repro.errors import ClusteringError
from repro.parallel.executor import pmap

__all__ = ["ShardClustering", "shard_assignment", "sharded_dbscan"]


class ShardClustering:
    """One shard's internal clustering, before the merge.

    Attributes
    ----------
    shard:
        Shard id.
    indices:
        Global point indices of the shard's members.
    result:
        The shard-local :class:`DBSCANResult` (labels are local — two
        shards' label 1 are unrelated until the merge).
    """

    __slots__ = ("shard", "indices", "result")

    def __init__(self, shard: int, indices: np.ndarray, result: DBSCANResult) -> None:
        self.shard = int(shard)
        self.indices = indices
        self.result = result

    def __repr__(self) -> str:
        return (
            f"ShardClustering(shard={self.shard}, "
            f"n_points={len(self.indices)}, "
            f"n_clusters={self.result.n_clusters})"
        )


def shard_assignment(ranks: np.ndarray, n_shards: int) -> np.ndarray:
    """Per-point shard ids: contiguous near-equal blocks of ranks.

    Rank blocks mirror how a distributed collector would naturally
    split a trace (rank-major files), and they keep each rank's bursts
    together so per-shard clusterings are meaningful on their own.
    Returns an int64 array aligned with *ranks*; at most ``n_shards``
    distinct ids appear (fewer when there are fewer ranks).
    """
    if n_shards < 1:
        raise ClusteringError(f"n_shards must be >= 1, got {n_shards}")
    ranks = np.asarray(ranks)
    unique = np.unique(ranks)
    blocks = np.array_split(unique, min(int(n_shards), len(unique)))
    shard_of_rank = np.empty(len(unique), dtype=np.int64)
    position = 0
    for shard, block in enumerate(blocks):
        shard_of_rank[position : position + len(block)] = shard
        position += len(block)
    return shard_of_rank[np.searchsorted(unique, ranks)]


def _shard_fit_task(
    task: tuple[np.ndarray, float, int],
) -> DBSCANResult:
    """Stage-1 worker: cluster one shard's points (module-level for pickling)."""
    points, eps, min_pts = task
    return DBSCAN(eps=eps, min_pts=min_pts).fit(points)


def _shard_count_task(
    task: tuple[np.ndarray, np.ndarray, float],
) -> np.ndarray:
    """Stage-2 worker: eps-neighbour counts of the candidates in one shard.

    Returns how many of this shard's points fall within *eps* of each
    candidate point (inclusive), using the same
    ``query_ball_point(..., return_length=True)`` predicate the
    whole-frame core-mask pass uses, so boundary-distance rounding is
    identical.
    """
    shard_points, candidates, eps = task
    return cKDTree(shard_points).query_ball_point(
        candidates, eps, workers=-1, return_length=True
    )


def sharded_dbscan(
    points: np.ndarray,
    eps: float,
    min_pts: int,
    shard_of: np.ndarray,
    *,
    jobs: int | None = None,
    shards_out: list[ShardClustering] | None = None,
) -> DBSCANResult:
    """Cluster *points* shard-by-shard; merge to whole-frame labels.

    Parameters
    ----------
    points:
        ``(n, d)`` points in the (already normalised) metric space.
    eps / min_pts:
        The DBSCAN parameters, as for :meth:`DBSCAN.fit`.
    shard_of:
        Per-point shard id (see :func:`shard_assignment`).  A single
        distinct id short-circuits to the whole-frame engine.
    jobs:
        Worker count for the per-shard stages (``None`` defers to
        ``REPRO_JOBS``); results are identical at any job count.
    shards_out:
        When given, receives one :class:`ShardClustering` per
        non-empty shard — the pre-merge intermediates the edge-case
        tests inspect.

    Returns the same :class:`DBSCANResult` :meth:`DBSCAN.fit` returns
    for the same inputs, bit-for-bit (labels, cluster count and core
    mask) — the guarantee the Hypothesis differential suite enforces.
    """
    points = _validate_points(points)
    n = points.shape[0]
    if n == 0:
        return _empty_result()
    shard_of = np.asarray(shard_of)
    if shard_of.shape != (n,):
        raise ClusteringError(
            f"shard_of must have one id per point, got shape "
            f"{shard_of.shape} for {n} points"
        )
    clusterer = DBSCAN(eps=eps, min_pts=min_pts)
    shard_ids = np.unique(shard_of)
    if len(shard_ids) <= 1:
        return clusterer.fit(points)

    with obs.span(
        "shard.dbscan", n_points=n, n_shards=len(shard_ids), eps=eps,
        min_pts=min_pts,
    ) as shard_span:
        shard_indices = [np.flatnonzero(shard_of == s) for s in shard_ids]

        # Stage 1: independent per-shard clusterings (parallel).  A
        # point core among its own shard's points is core globally —
        # more points can only add neighbours — so the local masks
        # seed the global one.
        local = pmap(
            _shard_fit_task,
            [(points[idx], eps, min_pts) for idx in shard_indices],
            jobs=jobs,
            label="shard.fit.pmap",
        )
        if shards_out is not None:
            shards_out.extend(
                ShardClustering(int(s), idx, res)
                for s, idx, res in zip(shard_ids, shard_indices, local)
            )
        core_mask = np.zeros(n, dtype=bool)
        for idx, result in zip(shard_indices, local):
            core_mask[idx] = result.core_mask

        # Stage 2: complete the undecided points.  The shards partition
        # the frame, so the global neighbour count of a point is the sum
        # of its counts against every shard (its own shard counts the
        # point itself, exactly once).
        candidate_idx = np.flatnonzero(~core_mask)
        if candidate_idx.size:
            candidates = points[candidate_idx]
            counts = pmap(
                _shard_count_task,
                [(points[idx], candidates, eps) for idx in shard_indices],
                jobs=jobs,
                label="shard.count.pmap",
            )
            total = np.sum(np.stack(counts, axis=0), axis=0)
            core_mask[candidate_idx] = total >= min_pts

        # Stage 3: global merge.  The completed core mask equals what
        # DBSCAN._core_mask(points) computes, and the grid labeller is
        # a pure function of (points, eps, min_pts, core mask), so this
        # resolves cross-shard reachability exactly as a whole-frame
        # fit would.
        try:
            grid = _Grid(points, eps)
            labels = clusterer._label(grid, core_mask)
        except OverflowError:
            result = dbscan_reference(points, eps, min_pts)
            if obs.enabled():
                shard_span.set(
                    n_clusters=result.n_clusters, engine="reference"
                )
            return result
        n_clusters = int(labels.max(initial=0))
        if obs.enabled():
            shard_span.set(
                n_clusters=n_clusters, n_core=int(core_mask.sum())
            )
            obs.count("shard.frames_total")
            obs.count("shard.shards_total", len(shard_ids))
        return DBSCANResult(
            labels=labels, n_clusters=n_clusters, core_mask=core_mask
        )
