"""Performance prediction from tracked trends (paper's future work).

The paper closes: *"we consider interesting to extend this mechanism to
build predictive models able to foresee the performance of experiments
beyond the sample space"*.  This subpackage implements that extension:
per-region trend models fitted to the tracked metric series —
constant, linear, power-law (log-log linear) and saturating plateau —
selected by cross-validated error, and an extrapolation API that
predicts a region's metric for unseen scenario values.

:class:`OnlineTrend` is the incremental (streaming) counterpart: the
same model zoo refit observation-by-observation with a bounded history
and a cheap coefficient-refit fast path, feeding the live watch's
one-step-ahead forecasts (:mod:`repro.stream.forecast`).
"""

from __future__ import annotations

from repro.predict.extrapolate import RegionForecast, extrapolate_trends, fit_trend
from repro.predict.models import (
    ConstantModel,
    LinearModel,
    PlateauModel,
    PowerLawModel,
    TrendModel,
    fit_best_model,
)
from repro.predict.online import ForecastPoint, OnlineTrend
from repro.predict.validate import BacktestReport, backtest_trend, backtest_trends

__all__ = [
    "TrendModel",
    "ConstantModel",
    "LinearModel",
    "PowerLawModel",
    "PlateauModel",
    "fit_best_model",
    "fit_trend",
    "extrapolate_trends",
    "RegionForecast",
    "ForecastPoint",
    "OnlineTrend",
    "BacktestReport",
    "backtest_trend",
    "backtest_trends",
]
