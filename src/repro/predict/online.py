"""Incremental trend refitting: the online half of :mod:`repro.predict`.

:func:`fit_best_model` was written for offline extrapolation — one shot
over a complete series.  A live watch refits after *every* window, so
running full model selection (with its leave-one-out cross-validation)
on each new point would make the forecast cost quadratic in stream
length.  :class:`OnlineTrend` splits the work:

- **coefficient refit** on every new observation — a single
  ``model_cls.fit`` of the currently selected family over the (bounded)
  history, cheap and exact;
- **family reselection** — the full :func:`fit_best_model` pass — on
  the first fit, and thereafter only when two conditions coincide: at
  least ``reselect_every`` observations since the last selection, and
  the refit model's RMSE over the history has degraded beyond
  :data:`RESELECT_DEGRADATION` times the RMSE recorded at selection
  time.  A healthy family keeps fitting its regime, so steady streams
  pay one cheap fit per point; the expensive cross-validated selection
  re-runs exactly when the data stops looking like the chosen family —
  which is also when it could pick a different one.

Both steps are deterministic functions of the observed points, so a
resumed stream that replays its history lands in exactly the same model
state as the uninterrupted run — the property the checkpointed watch
relies on.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ModelError
from repro.predict.extrapolate import RegionForecast
from repro.predict.models import TrendModel, fit_best_model

__all__ = ["ForecastPoint", "OnlineTrend", "RESELECT_DEGRADATION"]

#: Reselection trigger: the refit model's RMSE over the history must
#: exceed this multiple of the RMSE recorded at the last full selection
#: before another cross-validated :func:`fit_best_model` pass runs.
RESELECT_DEGRADATION = 2.0


class ForecastPoint:
    """One one-step-ahead prediction with its residual scale.

    Attributes
    ----------
    x:
        The parameter value the prediction targets (the next window).
    predicted:
        The model's value at *x*.
    residual_std:
        Standard deviation of the model's residuals over the history —
        the natural noise scale a divergence threshold is measured
        against.
    model:
        The fitted model that produced the prediction.
    """

    __slots__ = ("x", "predicted", "residual_std", "model")

    def __init__(
        self, x: float, predicted: float, residual_std: float, model: TrendModel
    ) -> None:
        self.x = x
        self.predicted = predicted
        self.residual_std = residual_std
        self.model = model

    @property
    def model_kind(self) -> str:
        """Class name of the producing model (``"LinearModel"``...)."""
        return type(self.model).__name__

    def __repr__(self) -> str:
        return (
            f"ForecastPoint(x={self.x:g}, predicted={self.predicted:.4g}, "
            f"residual_std={self.residual_std:.4g}, model={self.model_kind})"
        )


class OnlineTrend:
    """A scalar trend model refit incrementally as observations arrive.

    Parameters
    ----------
    reselect_every:
        Minimum number of observations between full model-family
        selections (:func:`fit_best_model`); between selections only
        the chosen family's coefficients are refit, and once the
        cadence is reached selection still waits for the refit RMSE to
        degrade past :data:`RESELECT_DEGRADATION` times the
        at-selection RMSE.  ``1`` reselects on every point (the
        offline behaviour, no degradation gate).
    max_history:
        Keep at most this many most-recent observations (``None`` =
        unbounded).  Bounding the history also bounds the refit cost,
        making per-window forecasting O(1) amortised in stream length.
    """

    def __init__(
        self, *, reselect_every: int = 4, max_history: int | None = 64
    ) -> None:
        if reselect_every < 1:
            raise ModelError("reselect_every must be >= 1")
        if max_history is not None and max_history < 2:
            raise ModelError("max_history must be >= 2 (or None)")
        self.reselect_every = int(reselect_every)
        self.max_history = max_history
        self._x: list[float] = []
        self._y: list[float] = []
        self._model: TrendModel | None = None
        self._since_reselect = 0
        self._selection_rmse = 0.0
        self._selection_points = 0

    # ------------------------------------------------------------------
    @property
    def n_observations(self) -> int:
        """Number of observations currently in the history window."""
        return len(self._x)

    @property
    def x(self) -> np.ndarray:
        """Observed parameter values (bounded history)."""
        return np.asarray(self._x, dtype=np.float64)

    @property
    def y(self) -> np.ndarray:
        """Observed metric values (bounded history)."""
        return np.asarray(self._y, dtype=np.float64)

    @property
    def model(self) -> TrendModel | None:
        """The current fitted model (``None`` before the first fit)."""
        return self._model

    @property
    def model_kind(self) -> str | None:
        """Class name of the current model, or ``None``."""
        return None if self._model is None else type(self._model).__name__

    # ------------------------------------------------------------------
    def observe(self, x: float, y: float) -> None:
        """Append one observation and refit.

        Non-finite observations are dropped (matching the offline
        fitters' finite-mask behaviour).  Refitting never raises: when
        no model can fit the current history (e.g. a single point), the
        model simply stays ``None`` until enough data arrives.
        """
        if not (np.isfinite(x) and np.isfinite(y)):
            return
        self._x.append(float(x))
        self._y.append(float(y))
        if self.max_history is not None and len(self._x) > self.max_history:
            del self._x[0], self._y[0]
        self._refit()

    def _refit(self) -> None:
        if len(self._x) < 2:
            return
        x, y = self.x, self.y
        try:
            if self._model is None:
                self._select(x, y)
                return
            self._model = type(self._model).fit(x, y)
            self._since_reselect += 1
            if self._since_reselect >= self.reselect_every and self._degraded(
                x, y
            ):
                self._select(x, y)
        except (ModelError, np.linalg.LinAlgError):
            # The selected family stopped fitting (e.g. power law after
            # a non-positive value): fall back to full reselection, and
            # keep the previous model if even that fails.
            try:
                self._select(x, y)
            except ModelError:
                pass

    def _select(self, x: np.ndarray, y: np.ndarray) -> None:
        """Full cross-validated family selection; records its RMSE."""
        self._model = fit_best_model(x, y)
        self._since_reselect = 0
        self._selection_rmse = self._rmse(x, y)
        self._selection_points = len(x)

    def _degraded(self, x: np.ndarray, y: np.ndarray) -> bool:
        """Has the refit model's accuracy slipped since selection?

        A selection made with fewer than four points fits its tiny
        history exactly, so its RMSE says nothing about the series'
        noise level; the first cadence check with enough data
        re-baselines the RMSE from the cheap refit instead of treating
        ordinary noise as degradation.  The absolute floor keeps float
        dust from tripping the gate when the selected family fits
        exactly (``_selection_rmse == 0``).
        """
        if self.reselect_every == 1:
            return True
        rmse = self._rmse(x, y)
        if self._selection_points < 4 and len(x) >= 4:
            self._selection_rmse = rmse
            self._selection_points = len(x)
            self._since_reselect = 0
            return False
        floor = 1e-9 * max(1.0, float(np.max(np.abs(y))))
        threshold = max(RESELECT_DEGRADATION * self._selection_rmse, floor)
        return rmse > threshold

    def _rmse(self, x: np.ndarray, y: np.ndarray) -> float:
        residuals = self._model.predict(x) - y
        return float(np.sqrt(np.mean(residuals * residuals)))

    def forecast(self, x_next: float) -> ForecastPoint | None:
        """One-step-ahead prediction at *x_next*, or ``None``.

        ``None`` means the trend has no usable model yet (fewer than
        two finite observations, or nothing could fit).
        """
        if self._model is None:
            return None
        x, y = self.x, self.y
        predicted = float(self._model.predict(np.asarray([x_next]))[0])
        residuals = self._model.predict(x) - y
        return ForecastPoint(
            x=float(x_next),
            predicted=predicted,
            residual_std=float(np.std(residuals)),
            model=self._model,
        )

    def as_region_forecast(
        self,
        region_id: int,
        metric: str,
        x_predict: np.ndarray | list[float],
    ) -> RegionForecast:
        """Package the current state as an offline-compatible forecast.

        Bridges back into :class:`repro.predict.RegionForecast`, so
        report code written for offline extrapolations renders online
        trends unchanged.
        """
        if self._model is None:
            raise ModelError(
                f"trend for region {region_id} metric {metric!r} has no "
                "fitted model yet"
            )
        x_predict = np.asarray(x_predict, dtype=np.float64)
        return RegionForecast(
            region_id=region_id,
            metric=metric,
            model=self._model,
            x_observed=self.x,
            y_observed=self.y,
            x_predicted=x_predict,
            y_predicted=self._model.predict(x_predict),
        )
