"""Extrapolating tracked trends beyond the sample space.

Bridges :mod:`repro.tracking.trends` and :mod:`repro.predict.models`:
fit a trend model per tracked region and predict its metric for unseen
scenario values — e.g. foresee the IPC of WRF's regions at 512 tasks
from the 128- and 256-task experiments, or MR-Genesis' IPC on a larger
node.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.predict.models import TrendModel, fit_best_model
from repro.tracking.trends import TrendSeries

__all__ = ["fit_trend", "extrapolate_trends", "RegionForecast"]


@dataclass(frozen=True)
class RegionForecast:
    """A fitted model plus its predictions for one tracked region.

    Attributes
    ----------
    region_id:
        The tracked region.
    metric:
        Metric the forecast covers.
    model:
        The selected trend model.
    x_observed / y_observed:
        The training points (scenario parameter, metric value).
    x_predicted / y_predicted:
        The extrapolation points.
    """

    region_id: int
    metric: str
    model: TrendModel
    x_observed: np.ndarray
    y_observed: np.ndarray
    x_predicted: np.ndarray
    y_predicted: np.ndarray

    @property
    def training_rmse(self) -> float:
        """RMSE of the model on its training points."""
        return self.model.rmse(self.x_observed, self.y_observed)

    def __repr__(self) -> str:
        kind = type(self.model).__name__
        preds = ", ".join(
            f"{x:g}->{y:.4g}"
            for x, y in zip(self.x_predicted.tolist(), self.y_predicted.tolist())
        )
        return (
            f"RegionForecast(region={self.region_id}, metric={self.metric!r}, "
            f"model={kind}, {preds})"
        )


def fit_trend(series: TrendSeries, x: np.ndarray | None = None) -> TrendModel:
    """Fit the best trend model to one series.

    *x* supplies the scenario parameter per frame; by default the frame
    index is used.
    """
    if x is None:
        x = np.arange(series.n_frames, dtype=np.float64)
    x = np.asarray(x, dtype=np.float64)
    if x.shape[0] != series.n_frames:
        raise ModelError(
            f"x has {x.shape[0]} entries for {series.n_frames} frames"
        )
    return fit_best_model(x, series.values)


def extrapolate_trends(
    series_list: list[TrendSeries],
    x_observed: np.ndarray | list[float] | None,
    x_predict: np.ndarray | list[float],
) -> list[RegionForecast]:
    """Fit and extrapolate every region's series.

    Parameters
    ----------
    series_list:
        Trend series from :func:`repro.tracking.trends.compute_trends`.
    x_observed:
        Scenario parameter of each frame (``None`` = frame index).
    x_predict:
        Parameter values to predict — typically beyond the observed
        range.
    """
    x_predict = np.asarray(x_predict, dtype=np.float64)
    forecasts: list[RegionForecast] = []
    for series in series_list:
        x = (
            np.arange(series.n_frames, dtype=np.float64)
            if x_observed is None
            else np.asarray(x_observed, dtype=np.float64)
        )
        finite = np.isfinite(series.values)
        model = fit_best_model(x[finite], series.values[finite])
        forecasts.append(
            RegionForecast(
                region_id=series.region_id,
                metric=series.metric,
                model=model,
                x_observed=x[finite],
                y_observed=series.values[finite],
                x_predicted=x_predict,
                y_predicted=model.predict(x_predict),
            )
        )
    return forecasts
