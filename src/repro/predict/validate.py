"""Walk-forward validation of the trend forecasts.

Before trusting an extrapolation (the paper's "foresee the performance
of future experiments"), the analyst should know how well the models
would have predicted the experiments already run.  This module
implements the standard walk-forward backtest: for every prefix of the
scenario sequence, fit the model selector on the prefix and predict the
next scenario, then compare against what was actually measured.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.predict.models import fit_best_model
from repro.tracking.trends import TrendSeries

__all__ = ["BacktestReport", "backtest_trend", "backtest_trends"]


@dataclass(frozen=True)
class BacktestReport:
    """Walk-forward prediction record of one region's trend.

    Attributes
    ----------
    region_id / metric:
        The series that was backtested.
    x:
        Scenario parameter of each predicted frame.
    predicted / actual:
        One entry per walk-forward step.
    """

    region_id: int
    metric: str
    x: np.ndarray
    predicted: np.ndarray
    actual: np.ndarray

    @property
    def n_steps(self) -> int:
        """Number of walk-forward predictions made."""
        return int(self.predicted.shape[0])

    @property
    def absolute_relative_errors(self) -> np.ndarray:
        """|predicted - actual| / |actual| per step (inf-safe)."""
        denominator = np.where(self.actual != 0, np.abs(self.actual), 1.0)
        return np.abs(self.predicted - self.actual) / denominator

    @property
    def mape(self) -> float:
        """Mean absolute percentage error over all steps."""
        errors = self.absolute_relative_errors
        return float(errors.mean()) if errors.size else 0.0

    def hit_rate(self, tolerance: float = 0.1) -> float:
        """Fraction of steps predicted within *tolerance* relative error."""
        errors = self.absolute_relative_errors
        if errors.size == 0:
            return 0.0
        return float((errors <= tolerance).mean())

    def __repr__(self) -> str:
        return (
            f"BacktestReport(region={self.region_id}, metric={self.metric!r}, "
            f"steps={self.n_steps}, mape={self.mape:.3f})"
        )


def backtest_trend(
    series: TrendSeries,
    x: np.ndarray | list[float] | None = None,
    *,
    min_train: int = 3,
) -> BacktestReport:
    """Walk-forward backtest of one series.

    Parameters
    ----------
    series:
        The tracked trend to validate.
    x:
        Scenario parameter per frame (``None`` = frame index).
    min_train:
        Smallest prefix used to fit before the first prediction.
    """
    if min_train < 2:
        raise ModelError("min_train must be >= 2")
    values = series.values
    x_arr = (
        np.arange(series.n_frames, dtype=np.float64)
        if x is None
        else np.asarray(x, dtype=np.float64)
    )
    if x_arr.shape[0] != series.n_frames:
        raise ModelError(
            f"x has {x_arr.shape[0]} entries for {series.n_frames} frames"
        )
    finite = np.isfinite(values)
    x_arr, values = x_arr[finite], values[finite]
    if values.shape[0] <= min_train:
        raise ModelError(
            f"need more than min_train={min_train} finite points, "
            f"got {values.shape[0]}"
        )

    predicted: list[float] = []
    actual: list[float] = []
    targets: list[float] = []
    for split in range(min_train, values.shape[0]):
        model = fit_best_model(x_arr[:split], values[:split])
        prediction = float(model.predict(np.asarray([x_arr[split]]))[0])
        predicted.append(prediction)
        actual.append(float(values[split]))
        targets.append(float(x_arr[split]))
    return BacktestReport(
        region_id=series.region_id,
        metric=series.metric,
        x=np.asarray(targets),
        predicted=np.asarray(predicted),
        actual=np.asarray(actual),
    )


def backtest_trends(
    series_list: list[TrendSeries],
    x: np.ndarray | list[float] | None = None,
    *,
    min_train: int = 3,
) -> list[BacktestReport]:
    """Backtest every region's series; skips series with too few points."""
    reports: list[BacktestReport] = []
    for series in series_list:
        try:
            reports.append(backtest_trend(series, x, min_train=min_train))
        except ModelError:
            continue
    return reports
