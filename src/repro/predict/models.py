"""Trend model zoo for per-region metric evolution.

Each model maps a scalar scenario parameter (process count, problem
size, block size, node occupation...) to a metric value.  Models are
deliberately simple — the trends the tracker extracts are low-sample
(one point per experiment), so parsimony beats flexibility.  Model
selection uses leave-one-out cross-validation when enough points exist,
falling back to training error otherwise.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError

__all__ = [
    "TrendModel",
    "ConstantModel",
    "LinearModel",
    "PowerLawModel",
    "PlateauModel",
    "fit_best_model",
]


class TrendModel(ABC):
    """A fitted scalar trend model."""

    @abstractmethod
    def predict(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the model at *x*."""

    @classmethod
    @abstractmethod
    def fit(cls, x: np.ndarray, y: np.ndarray) -> "TrendModel":
        """Fit the model to observations."""

    @property
    @abstractmethod
    def n_parameters(self) -> int:
        """Number of free parameters (for selection tie-breaking)."""

    def rmse(self, x: np.ndarray, y: np.ndarray) -> float:
        """Root-mean-square error on the given points."""
        residual = self.predict(np.asarray(x, dtype=np.float64)) - y
        return float(np.sqrt(np.mean(residual**2)))


@dataclass(frozen=True)
class ConstantModel(TrendModel):
    """``y = c`` — metrics that do not respond to the parameter."""

    value: float

    @classmethod
    def fit(cls, x: np.ndarray, y: np.ndarray) -> "ConstantModel":
        return cls(value=float(np.mean(y)))

    def predict(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return np.full_like(x, self.value)

    @property
    def n_parameters(self) -> int:
        return 1


@dataclass(frozen=True)
class LinearModel(TrendModel):
    """``y = a x + b``."""

    slope: float
    intercept: float

    @classmethod
    def fit(cls, x: np.ndarray, y: np.ndarray) -> "LinearModel":
        slope, intercept = np.polyfit(x, y, 1)
        return cls(slope=float(slope), intercept=float(intercept))

    def predict(self, x: np.ndarray) -> np.ndarray:
        return self.slope * np.asarray(x, dtype=np.float64) + self.intercept

    @property
    def n_parameters(self) -> int:
        return 2


@dataclass(frozen=True)
class PowerLawModel(TrendModel):
    """``y = c x^e`` — scaling laws (work per process vs process count)."""

    coefficient: float
    exponent: float

    @classmethod
    def fit(cls, x: np.ndarray, y: np.ndarray) -> "PowerLawModel":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if np.any(x <= 0) or np.any(y <= 0):
            raise ModelError("power-law fit requires positive x and y")
        exponent, log_c = np.polyfit(np.log(x), np.log(y), 1)
        return cls(coefficient=float(np.exp(log_c)), exponent=float(exponent))

    def predict(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return self.coefficient * np.power(x, self.exponent)

    @property
    def n_parameters(self) -> int:
        return 2


@dataclass(frozen=True)
class PlateauModel(TrendModel):
    """``y = plateau + amplitude * exp(-x / scale)`` — saturating trends.

    Captures the paper's "drops then stabilises" IPC patterns (NAS BT
    regions after the L2 cliff, HydroC after the L1 dip).
    """

    plateau: float
    amplitude: float
    scale: float

    @classmethod
    def fit(cls, x: np.ndarray, y: np.ndarray) -> "PlateauModel":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if x.size < 3:
            raise ModelError("plateau fit needs at least 3 points")
        # Grid-search the scale (the only non-linear parameter); solve
        # plateau/amplitude linearly for each candidate.
        spans = np.ptp(x) or 1.0
        best: tuple[float, float, float, float] | None = None
        for scale in np.geomspace(spans / 20, spans * 5, 24):
            basis = np.exp(-x / scale)
            design = np.column_stack([np.ones_like(x), basis])
            coef, *_ = np.linalg.lstsq(design, y, rcond=None)
            residual = design @ coef - y
            sse = float(residual @ residual)
            if best is None or sse < best[0]:
                best = (sse, float(coef[0]), float(coef[1]), float(scale))
        assert best is not None
        _, plateau, amplitude, scale = best
        return cls(plateau=plateau, amplitude=amplitude, scale=scale)

    def predict(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return self.plateau + self.amplitude * np.exp(-x / self.scale)

    @property
    def n_parameters(self) -> int:
        return 3


_CANDIDATES: tuple[type[TrendModel], ...] = (
    ConstantModel,
    LinearModel,
    PowerLawModel,
    PlateauModel,
)


def _loo_rmse(model_cls: type[TrendModel], x: np.ndarray, y: np.ndarray) -> float:
    """Leave-one-out RMSE of a model class on the observations."""
    errors = []
    for hold in range(x.size):
        mask = np.arange(x.size) != hold
        try:
            model = model_cls.fit(x[mask], y[mask])
        except (ModelError, np.linalg.LinAlgError):
            return float("inf")
        prediction = float(model.predict(np.asarray([x[hold]]))[0])
        errors.append((prediction - y[hold]) ** 2)
    return float(np.sqrt(np.mean(errors)))


def fit_best_model(x: np.ndarray, y: np.ndarray) -> TrendModel:
    """Fit every candidate and return the best by LOO cross-validation.

    With fewer than 4 points, selection falls back to training RMSE
    with a parsimony penalty; candidates that cannot fit the data (e.g.
    power law with non-positive values) are skipped.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ModelError("x and y must be 1-D arrays of equal length")
    finite = np.isfinite(x) & np.isfinite(y)
    x, y = x[finite], y[finite]
    if x.size < 2:
        raise ModelError("need at least 2 finite points to fit a trend")

    scored: list[tuple[float, int, TrendModel]] = []
    for model_cls in _CANDIDATES:
        try:
            model = model_cls.fit(x, y)
        except (ModelError, np.linalg.LinAlgError):
            continue
        if x.size >= 4:
            score = _loo_rmse(model_cls, x, y)
        else:
            scale = float(np.std(y)) or 1.0
            score = model.rmse(x, y) + 0.05 * scale * model.n_parameters
        if np.isfinite(score):
            scored.append((score, model.n_parameters, model))
    if not scored:
        raise ModelError("no trend model could fit the data")
    # Prefer parsimony among models whose scores are essentially tied —
    # a flat series must select the constant model, not a zero-slope
    # line that happened to win the cross-validation by float dust.
    best_score = min(score for score, _, _ in scored)
    tolerance = best_score * 1.15 + 1e-12 * max(1.0, float(np.max(np.abs(y))))
    contenders = [item for item in scored if item[0] <= tolerance]
    contenders.sort(key=lambda item: (item[1], item[0]))
    return contenders[0][2]
