"""Cluster analysis: from performance data to trackable objects.

Implements the frame-capture and object-recognition stages of the
paper's pipeline (section 2).  CPU bursts become points in a 2-D (or
n-D) performance-metric space; density-based clustering groups similar
bursts into objects; a relevance filter keeps the clusters that account
for most of the execution time.

- :mod:`~repro.clustering.dbscan` — DBSCAN implemented from scratch on
  :class:`scipy.spatial.cKDTree` (no scikit-learn in this environment).
- :mod:`~repro.clustering.normalize` — per-frame axis scaling.
- :mod:`~repro.clustering.cluster` — :class:`Cluster` / :class:`ClusterSet`.
- :mod:`~repro.clustering.frames` — build :class:`Frame` objects from
  traces; the frame is the unit the tracker consumes.
- :mod:`~repro.clustering.quality` — internal clustering quality stats.
"""

from __future__ import annotations

from repro.clustering.cluster import Cluster, ClusterSet
from repro.clustering.dbscan import DBSCAN, DBSCANResult
from repro.clustering.frames import Frame, FrameSettings, make_frame, make_frames
from repro.clustering.normalize import MinMaxScaler, normalize_columns
from repro.clustering.quality import cluster_quality, silhouette_samples
from repro.clustering.tuning import auto_settings, kdist_eps, tune_eps

__all__ = [
    "auto_settings",
    "kdist_eps",
    "tune_eps",
    "DBSCAN",
    "DBSCANResult",
    "Cluster",
    "ClusterSet",
    "Frame",
    "FrameSettings",
    "make_frame",
    "make_frames",
    "MinMaxScaler",
    "normalize_columns",
    "cluster_quality",
    "silhouette_samples",
]
