"""Axis normalisation for clustering and cross-frame comparison.

Two scalings are used in the pipeline:

- **per-frame min-max** before DBSCAN, so one eps value is meaningful
  for both axes regardless of units (IPC is O(1), instruction counts
  are O(10^9));
- **cross-frame scale normalisation** for tracking (implemented in
  :mod:`repro.tracking.scaling`), which builds on the
  :class:`MinMaxScaler` here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ClusteringError

__all__ = ["MinMaxScaler", "normalize_columns"]


@dataclass(frozen=True, slots=True)
class MinMaxScaler:
    """Affine map sending ``[lo, hi]`` per column to ``[0, 1]``.

    Degenerate columns (``lo == hi``) map to the constant 0.5 so that
    single-valued metrics do not explode the transform.
    """

    lo: np.ndarray
    hi: np.ndarray

    @classmethod
    def fit(cls, values: np.ndarray) -> "MinMaxScaler":
        """Fit column-wise bounds on a ``(n, d)`` array."""
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2:
            raise ClusteringError(f"expected a 2-D array, got shape {values.shape}")
        if values.shape[0] == 0:
            raise ClusteringError("cannot fit a scaler on an empty array")
        if not np.isfinite(values).all():
            raise ClusteringError("values contain NaN or infinite entries")
        return cls(lo=values.min(axis=0), hi=values.max(axis=0))

    @classmethod
    def fit_union(cls, arrays: list[np.ndarray]) -> "MinMaxScaler":
        """Fit bounds over the union of several ``(n_i, d)`` arrays.

        This is how the paper adjusts intensive metrics: "the scale ...
        is adjusted to the minimum and maximum values seen along all
        experiments".
        """
        if not arrays:
            raise ClusteringError("fit_union needs at least one array")
        stacked = np.vstack([np.asarray(a, dtype=np.float64) for a in arrays])
        return cls.fit(stacked)

    @property
    def span(self) -> np.ndarray:
        """Per-column range, with degenerate columns mapped to 1."""
        span = self.hi - self.lo
        return np.where(span > 0, span, 1.0)

    def transform(self, values: np.ndarray) -> np.ndarray:
        """Scale *values* into the fitted [0, 1] box (out-of-range values
        land outside [0, 1], which is fine for distance computations)."""
        values = np.asarray(values, dtype=np.float64)
        scaled = (values - self.lo) / self.span
        degenerate = (self.hi - self.lo) <= 0
        if degenerate.any():
            scaled[:, degenerate] = 0.5
        return scaled

    def inverse(self, scaled: np.ndarray) -> np.ndarray:
        """Undo :meth:`transform`."""
        scaled = np.asarray(scaled, dtype=np.float64)
        return scaled * self.span + self.lo


def normalize_columns(values: np.ndarray) -> tuple[np.ndarray, MinMaxScaler]:
    """Min-max scale each column of *values*; return (scaled, scaler)."""
    scaler = MinMaxScaler.fit(values)
    return scaler.transform(values), scaler
