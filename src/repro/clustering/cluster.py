"""Cluster containers: the recognised objects of one frame.

A :class:`Cluster` is one object in the performance-space image — a
group of CPU bursts with similar behaviour.  Clusters are numbered by
decreasing total duration (cluster 1 is the most time-consuming), the
convention the BSC tools and the paper's figures use.  Label 0 is
noise/filtered.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ClusteringError

__all__ = ["Cluster", "ClusterSet", "rank_labels_by_duration"]


@dataclass(frozen=True, slots=True)
class Cluster:
    """One recognised object of a frame.

    Attributes
    ----------
    cluster_id:
        Duration-ranked id (1 = most time-consuming).
    indices:
        Indices of the member bursts within the frame's trace.
    centroid:
        Mean position in the frame's (raw) metric space.
    total_duration:
        Sum of member burst durations in seconds.
    callpaths:
        Canonical string forms of the call paths seen among members.
    ranks:
        Distinct MPI ranks contributing bursts to this cluster.
    """

    cluster_id: int
    indices: np.ndarray
    centroid: np.ndarray
    total_duration: float
    callpaths: frozenset[str] = field(default_factory=frozenset)
    ranks: frozenset[int] = field(default_factory=frozenset)

    @property
    def size(self) -> int:
        """Number of member bursts."""
        return int(self.indices.shape[0])

    def __repr__(self) -> str:
        return (
            f"Cluster(id={self.cluster_id}, size={self.size}, "
            f"duration={self.total_duration:.4g}s)"
        )


@dataclass(frozen=True, slots=True)
class ClusterSet:
    """All clusters of one frame plus the per-point labelling.

    ``labels[i]`` is the cluster id of point *i* (0 = noise/filtered).
    """

    labels: np.ndarray
    clusters: tuple[Cluster, ...]

    def __post_init__(self) -> None:
        ids = [c.cluster_id for c in self.clusters]
        if ids != sorted(ids) or len(set(ids)) != len(ids):
            raise ClusteringError("cluster ids must be unique and ascending")
        if any(c.cluster_id < 1 for c in self.clusters):
            raise ClusteringError("cluster ids must start at 1 (0 is noise)")

    @property
    def n_clusters(self) -> int:
        """Number of recognised clusters (noise excluded)."""
        return len(self.clusters)

    @property
    def cluster_ids(self) -> tuple[int, ...]:
        """Ids of the recognised clusters, ascending."""
        return tuple(c.cluster_id for c in self.clusters)

    def cluster(self, cluster_id: int) -> Cluster:
        """Return the cluster with the given id."""
        for cluster in self.clusters:
            if cluster.cluster_id == cluster_id:
                return cluster
        raise KeyError(f"no cluster with id {cluster_id}")

    def __iter__(self):
        return iter(self.clusters)

    def __len__(self) -> int:
        return len(self.clusters)

    @property
    def noise_indices(self) -> np.ndarray:
        """Indices of noise/filtered points."""
        return np.flatnonzero(self.labels == 0)

    def duration_coverage(self, total_duration: float) -> float:
        """Fraction of *total_duration* the recognised clusters explain."""
        if total_duration <= 0:
            return 0.0
        clustered = sum(c.total_duration for c in self.clusters)
        return clustered / total_duration


def rank_labels_by_duration(
    labels: np.ndarray, durations: np.ndarray
) -> np.ndarray:
    """Renumber cluster labels by decreasing total duration.

    Input labels use 0 for noise and arbitrary positive ids for
    clusters; the output keeps 0 for noise and assigns 1 to the cluster
    with the largest summed duration, 2 to the next, and so on.
    """
    labels = np.asarray(labels)
    durations = np.asarray(durations, dtype=np.float64)
    if labels.shape != durations.shape:
        raise ClusteringError(
            f"labels {labels.shape} and durations {durations.shape} differ in shape"
        )
    unique = np.unique(labels)
    unique = unique[unique != 0]
    if unique.size == 0:
        return np.zeros_like(labels)
    totals = np.array([durations[labels == lab].sum() for lab in unique])
    order = np.argsort(totals)[::-1]
    mapping = np.zeros(int(labels.max()) + 1, dtype=labels.dtype)
    for new_id, idx in enumerate(order, start=1):
        mapping[unique[idx]] = new_id
    out = np.zeros_like(labels)
    positive = labels > 0
    out[positive] = mapping[labels[positive]]
    return out
