"""Automatic DBSCAN parameter selection.

The BSC cluster-analysis workflow refines its DBSCAN parameters per
trace; this module provides two standard estimators so users need not
hand-tune ``eps``:

- :func:`kdist_eps` — the classic Ester et al. heuristic: sort every
  point's distance to its k-th neighbour and take the curve's knee
  (point of maximum deviation from the straight line between the
  extremes);
- :func:`tune_eps` — a plateau search: cluster the frame across a
  candidate ladder and pick the eps at the centre of the widest stable
  cluster-count plateau, breaking ties by sampled silhouette.

Both return concrete numbers usable in
:class:`~repro.clustering.frames.FrameSettings`; :func:`auto_settings`
bundles the whole thing.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np
from scipy.spatial import cKDTree

from repro.clustering.dbscan import DBSCAN
from repro.clustering.frames import FrameSettings
from repro.clustering.normalize import MinMaxScaler
from repro.clustering.quality import silhouette_score
from repro.errors import ClusteringError
from repro.trace.trace import Trace

__all__ = ["kdist_eps", "tune_eps", "auto_settings", "EpsCandidate", "TuningResult"]


def kdist_eps(points: np.ndarray, k: int = 8, *, max_points: int = 4000,
              seed: int = 0) -> float:
    """Estimate eps from the knee of the sorted k-distance curve.

    *points* must already live in the normalised clustering space.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] <= k:
        raise ClusteringError(
            f"need a 2-D array with more than k={k} points, got {points.shape}"
        )
    if points.shape[0] > max_points:
        rng = np.random.default_rng(seed)
        points = points[rng.choice(points.shape[0], size=max_points, replace=False)]
    tree = cKDTree(points)
    distances, _ = tree.query(points, k=k + 1, workers=-1)
    kdist = np.sort(distances[:, -1])

    # Knee: maximum distance between the curve and the chord joining its
    # endpoints.
    n = kdist.shape[0]
    x = np.linspace(0.0, 1.0, n)
    y = (kdist - kdist[0]) / max(kdist[-1] - kdist[0], 1e-300)
    deviation = y - x
    knee = int(np.argmax(np.abs(deviation)))
    eps = float(kdist[knee])
    if eps <= 0:
        # Degenerate data (duplicated points): fall back to the largest
        # positive k-distance, or an arbitrary small radius.
        positive = kdist[kdist > 0]
        eps = float(positive[0]) if positive.size else 1e-3
    return eps


@dataclass(frozen=True, slots=True)
class EpsCandidate:
    """Evaluation of one eps value during tuning."""

    eps: float
    n_clusters: int
    noise_fraction: float
    silhouette: float


@dataclass(frozen=True, slots=True)
class TuningResult:
    """Outcome of :func:`tune_eps`.

    Attributes
    ----------
    best:
        The selected candidate.
    candidates:
        Every evaluated candidate, in eps order.
    """

    best: EpsCandidate
    candidates: tuple[EpsCandidate, ...]

    @property
    def eps(self) -> float:
        """The selected eps value."""
        return self.best.eps


def tune_eps(
    trace: Trace,
    *,
    settings: FrameSettings | None = None,
    candidates: np.ndarray | None = None,
    seed: int = 0,
) -> TuningResult:
    """Pick eps by plateau stability over a candidate ladder.

    Clusters the trace's normalised metric space at every candidate,
    groups consecutive candidates producing the same cluster count into
    plateaus, and selects the widest plateau with at least one cluster
    (ties: higher mean silhouette), returning its best-silhouette
    member.
    """
    settings = settings or FrameSettings()
    if candidates is None:
        candidates = np.geomspace(0.01, 0.12, 10)
    candidates = np.sort(np.asarray(candidates, dtype=np.float64))
    if candidates.size == 0 or candidates[0] <= 0:
        raise ClusteringError("eps candidates must be positive")

    x = trace.metric(settings.x_metric)
    y = trace.metric(settings.y_metric)
    if settings.log_y:
        if np.any(y <= 0):
            raise ClusteringError("log_y requires positive y values")
        y = np.log10(y)
    space = MinMaxScaler.fit(np.column_stack([x, y])).transform(
        np.column_stack([x, y])
    )
    min_pts = settings.min_pts if settings.min_pts is not None else max(
        5, space.shape[0] // 400
    )

    evaluated: list[EpsCandidate] = []
    for eps in candidates:
        result = DBSCAN(eps=float(eps), min_pts=min_pts).fit(space)
        noise = float((result.labels == 0).mean()) if result.labels.size else 1.0
        score = silhouette_score(space, result.labels, seed=seed)
        evaluated.append(
            EpsCandidate(
                eps=float(eps),
                n_clusters=result.n_clusters,
                noise_fraction=noise,
                silhouette=score,
            )
        )

    # Plateaus of consecutive candidates with identical cluster counts.
    plateaus: list[list[EpsCandidate]] = []
    for candidate in evaluated:
        if plateaus and plateaus[-1][-1].n_clusters == candidate.n_clusters:
            plateaus[-1].append(candidate)
        else:
            plateaus.append([candidate])
    useful = [p for p in plateaus if p[0].n_clusters >= 1]
    if not useful:
        raise ClusteringError(
            "no eps candidate produced any cluster; widen the ladder"
        )
    best_plateau = max(
        useful,
        key=lambda p: (len(p), float(np.mean([c.silhouette for c in p]))),
    )
    best = max(best_plateau, key=lambda c: (c.silhouette, -c.noise_fraction))
    return TuningResult(best=best, candidates=tuple(evaluated))


def auto_settings(
    trace: Trace,
    *,
    settings: FrameSettings | None = None,
    method: str = "plateau",
    seed: int = 0,
) -> FrameSettings:
    """Return *settings* with eps chosen automatically for *trace*.

    ``method`` is ``"plateau"`` (:func:`tune_eps`, slower, more robust)
    or ``"kdist"`` (:func:`kdist_eps`, one clustering-free pass).
    """
    settings = settings or FrameSettings()
    if method == "plateau":
        eps = tune_eps(trace, settings=settings, seed=seed).eps
    elif method == "kdist":
        x = trace.metric(settings.x_metric)
        y = trace.metric(settings.y_metric)
        if settings.log_y:
            y = np.log10(y)
        space = MinMaxScaler.fit(np.column_stack([x, y])).transform(
            np.column_stack([x, y])
        )
        min_pts = settings.min_pts if settings.min_pts is not None else max(
            5, space.shape[0] // 400
        )
        eps = kdist_eps(space, k=min_pts, seed=seed)
    else:
        raise ClusteringError(f"unknown tuning method {method!r}")
    return replace(settings, eps=eps)
