"""Internal clustering-quality measures.

Used by tests and by analysts tuning DBSCAN parameters: a silhouette
coefficient (sampled, since the exact version is quadratic) and a set
of per-frame structural statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial.distance import cdist

from repro.errors import ClusteringError

__all__ = ["silhouette_samples", "silhouette_score", "cluster_quality", "QualityReport"]


def silhouette_samples(
    points: np.ndarray,
    labels: np.ndarray,
    *,
    max_points: int = 2000,
    seed: int = 0,
) -> np.ndarray:
    """Silhouette coefficient per (sampled) clustered point.

    Noise points (label 0) are excluded.  When more than *max_points*
    clustered points exist, a uniform subsample keeps the computation
    near-linear while remaining a faithful estimate.
    """
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels)
    if points.shape[0] != labels.shape[0]:
        raise ClusteringError("points and labels must have equal length")
    clustered = np.flatnonzero(labels != 0)
    if clustered.size == 0:
        return np.zeros(0)
    unique = np.unique(labels[clustered])
    if unique.size < 2:
        return np.zeros(clustered.size)

    rng = np.random.default_rng(seed)
    if clustered.size > max_points:
        clustered = rng.choice(clustered, size=max_points, replace=False)
    sample_points = points[clustered]
    sample_labels = labels[clustered]

    # Distances from each sampled point to each cluster's sampled points.
    scores = np.zeros(clustered.size)
    dists = cdist(sample_points, sample_points)
    for i in range(clustered.size):
        own = sample_labels[i]
        own_mask = sample_labels == own
        other_count = int(own_mask.sum()) - 1
        if other_count <= 0:
            scores[i] = 0.0
            continue
        a = dists[i, own_mask].sum() / other_count
        b = np.inf
        for lab in unique:
            if lab == own:
                continue
            mask = sample_labels == lab
            if mask.any():
                b = min(b, dists[i, mask].mean())
        scores[i] = 0.0 if not np.isfinite(b) else (b - a) / max(a, b)
    return scores


def silhouette_score(
    points: np.ndarray, labels: np.ndarray, *, max_points: int = 2000, seed: int = 0
) -> float:
    """Mean sampled silhouette coefficient (0 when undefined)."""
    samples = silhouette_samples(points, labels, max_points=max_points, seed=seed)
    return float(samples.mean()) if samples.size else 0.0


@dataclass(frozen=True, slots=True)
class QualityReport:
    """Structural statistics of one clustering.

    Attributes
    ----------
    n_clusters:
        Cluster count.
    noise_fraction:
        Fraction of points labelled as noise.
    silhouette:
        Sampled mean silhouette coefficient.
    smallest / largest:
        Sizes of the extreme clusters (0 when there are none).
    """

    n_clusters: int
    noise_fraction: float
    silhouette: float
    smallest: int
    largest: int


def cluster_quality(
    points: np.ndarray, labels: np.ndarray, *, seed: int = 0
) -> QualityReport:
    """Compute a :class:`QualityReport` for a labelling of *points*."""
    labels = np.asarray(labels)
    n = labels.shape[0]
    unique, counts = np.unique(labels[labels != 0], return_counts=True)
    return QualityReport(
        n_clusters=int(unique.size),
        noise_fraction=float((labels == 0).sum() / n) if n else 0.0,
        silhouette=silhouette_score(points, labels, seed=seed),
        smallest=int(counts.min()) if counts.size else 0,
        largest=int(counts.max()) if counts.size else 0,
    )
