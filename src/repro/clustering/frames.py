"""Frame construction: one experiment -> one image of trackable objects.

A :class:`Frame` is the analogue of a video frame in the tracking
analogy: the scatter of every CPU burst of one experiment in a chosen
performance-metric space, with density clustering applied and the
clusters ranked and filtered by the time they represent.  Frames are
what the tracker consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING

import numpy as np

from repro import obs
from repro.clustering.cluster import Cluster, ClusterSet, rank_labels_by_duration
from repro.clustering.dbscan import DBSCAN
from repro.clustering.normalize import MinMaxScaler
from repro.errors import ClusteringError
from repro.obs.log import get_logger
from repro.trace.filters import filter_min_duration
from repro.trace.trace import Trace

if TYPE_CHECKING:  # runtime imports stay inside make_frames (cycle)
    from repro.parallel.cache import PipelineCache
    from repro.robust.partial import ItemFailure

__all__ = [
    "FrameSettings",
    "Frame",
    "make_frame",
    "make_frames",
    "make_frames_partial",
    "frame_from_labels",
    "precheck_frame_input",
]

log = get_logger(__name__)


@dataclass(frozen=True, slots=True)
class FrameSettings:
    """Knobs of the frame-construction pipeline.

    Attributes
    ----------
    x_metric / y_metric:
        Axis metrics (derived metric or raw counter names).  The paper's
        default pair: IPC on X, Instructions Completed on Y.
    extra_metrics:
        Additional clustering dimensions beyond the two plot axes — the
        paper notes the process "can be likewise applied to any
        arbitrary number of dimensions".  Extra axes participate in the
        DBSCAN space and in cross-frame normalisation; plots keep
        showing the (x, y) projection.
    eps:
        DBSCAN radius in the per-frame min-max normalised space.
    min_pts:
        DBSCAN core threshold; ``None`` picks ``max(5, n/400)``.
    min_duration:
        Discard bursts shorter than this (seconds) before clustering.
    relevance:
        Keep the top-duration clusters until they cover this fraction of
        the *clustered* time; the rest are folded into label 0.  This is
        the paper's reduction "to the ones considered more relevant".
    log_y:
        Cluster on ``log10(y)`` instead of raw y — useful when one frame
        spans decades of instruction counts (NAS BT classes).
    """

    x_metric: str = "ipc"
    y_metric: str = "instructions"
    extra_metrics: tuple[str, ...] = ()
    eps: float = 0.03
    min_pts: int | None = None
    min_duration: float = 0.0
    relevance: float = 0.95
    log_y: bool = False

    def __post_init__(self) -> None:
        if self.eps <= 0:
            raise ClusteringError(f"eps must be > 0, got {self.eps}")
        if self.min_pts is not None and self.min_pts < 1:
            raise ClusteringError(f"min_pts must be >= 1, got {self.min_pts}")
        if not 0.0 < self.relevance <= 1.0:
            raise ClusteringError(f"relevance must be in (0, 1], got {self.relevance}")
        if self.min_duration < 0:
            raise ClusteringError("min_duration must be >= 0")
        if len(set(self.metric_names)) != len(self.metric_names):
            raise ClusteringError(
                f"clustering metrics must be distinct, got {self.metric_names}"
            )

    @property
    def metric_names(self) -> tuple[str, ...]:
        """All clustering dimensions, (x, y, *extra)."""
        return (self.x_metric, self.y_metric, *self.extra_metrics)

    @property
    def n_dimensions(self) -> int:
        """Number of clustering dimensions."""
        return 2 + len(self.extra_metrics)


@dataclass(frozen=True)
class Frame:
    """One clustered image of the performance space.

    Attributes
    ----------
    trace:
        The (duration-filtered) trace behind the frame.
    settings:
        The settings the frame was built with.
    points:
        ``(n, d)`` raw metric values per burst, one column per
        clustering dimension; columns 0 and 1 are the plot axes
        (x = IPC, y = instructions by default).
    cluster_set:
        Per-point labels plus duration-ranked :class:`Cluster` objects.
    """

    trace: Trace
    settings: FrameSettings
    points: np.ndarray
    cluster_set: ClusterSet

    @property
    def plot_points(self) -> np.ndarray:
        """The (x, y) projection used by the 2-D renderers."""
        return self.points[:, :2]

    @property
    def label(self) -> str:
        """Human-readable experiment label."""
        return self.trace.label()

    @property
    def labels(self) -> np.ndarray:
        """Per-point cluster ids (0 = noise/filtered)."""
        return self.cluster_set.labels

    @property
    def n_points(self) -> int:
        """Number of bursts in the frame."""
        return int(self.points.shape[0])

    @property
    def n_clusters(self) -> int:
        """Number of relevant clusters."""
        return self.cluster_set.n_clusters

    @property
    def cluster_ids(self) -> tuple[int, ...]:
        """Ids of the relevant clusters."""
        return self.cluster_set.cluster_ids

    def cluster(self, cluster_id: int) -> Cluster:
        """Look up one cluster by id."""
        return self.cluster_set.cluster(cluster_id)

    @cached_property
    def rank_sequences(self) -> dict[int, np.ndarray]:
        """Time-ordered cluster-id sequence per rank (noise dropped).

        This is the input of the SPMD-simultaneity and execution-sequence
        evaluators: for every rank, the chronological succession of the
        clusters its bursts belong to.
        """
        sequences: dict[int, np.ndarray] = {}
        labels = self.labels
        for rank in np.unique(self.trace.rank):
            mask = self.trace.rank == rank
            order = np.argsort(self.trace.begin[mask], kind="stable")
            seq = labels[mask][order]
            sequences[int(rank)] = seq[seq != 0]
        return sequences

    def cluster_metric(self, cluster_id: int, metric: str, weighted: bool = True) -> float:
        """Aggregate *metric* over one cluster's bursts.

        Extensive metrics (instructions, duration, misses...) are summed
        then divided by the burst count (mean per burst); the IPC is
        computed as total instructions over total cycles when *weighted*
        (the paper's tables aggregate that way), else as a plain mean.
        """
        indices = self.cluster(cluster_id).indices
        if metric == "ipc" and weighted:
            instructions = self.trace.metric("instructions")[indices].sum()
            cycles = self.trace.metric("cycles")[indices].sum()
            return float(instructions / cycles) if cycles else 0.0
        values = self.trace.metric(metric)[indices]
        return float(values.mean()) if values.size else 0.0

    def cluster_total(self, cluster_id: int, metric: str) -> float:
        """Sum *metric* over one cluster's bursts."""
        indices = self.cluster(cluster_id).indices
        return float(self.trace.metric(metric)[indices].sum())

    def __repr__(self) -> str:
        return (
            f"Frame(label={self.label!r}, n_points={self.n_points}, "
            f"n_clusters={self.n_clusters})"
        )


def _auto_min_pts(n_points: int) -> int:
    """Default DBSCAN core threshold: scales gently with the population."""
    return max(5, n_points // 400)


def _relevance_filter(
    labels: np.ndarray, durations: np.ndarray, relevance: float
) -> np.ndarray:
    """Keep duration-ranked clusters 1..k covering *relevance* of the
    clustered time; relabel the rest to 0 and renumber to stay dense."""
    out = labels.copy()
    ids = np.unique(labels)
    ids = ids[ids != 0]
    if ids.size == 0:
        return out
    totals = np.array([durations[labels == lab].sum() for lab in ids])
    # labels are already duration-ranked: ids ascending = totals descending
    order = np.argsort(ids)
    cumulative = np.cumsum(totals[order])
    target = relevance * cumulative[-1]
    keep_count = int(np.searchsorted(cumulative, target)) + 1
    keep_count = min(keep_count, ids.size)
    dropped = ids[order][keep_count:]
    if dropped.size:
        out[np.isin(out, dropped)] = 0
    return out


def _filtered_trace(trace: Trace, settings: FrameSettings) -> Trace:
    """Apply the minimum-duration filter and reject degenerate traces."""
    n_before = trace.n_bursts
    if settings.min_duration > 0:
        trace = filter_min_duration(trace, settings.min_duration)
    if trace.n_bursts == 0:
        if n_before:
            raise ClusteringError(
                f"trace {trace.label()!r}: the min_duration="
                f"{settings.min_duration:g}s filter removed all {n_before} "
                "bursts; lower min_duration or check the trace's time unit"
            )
        raise ClusteringError(f"trace {trace.label()!r} has no bursts to cluster")
    if trace.n_bursts == 1:
        raise ClusteringError(
            f"trace {trace.label()!r} has a single burst "
            f"{'after the min_duration filter ' if n_before > 1 else ''}"
            "— density clustering needs at least two points"
        )
    return trace


def _metric_points(trace: Trace, settings: FrameSettings) -> np.ndarray:
    """Raw ``(n, d)`` metric matrix, one column per clustering dimension.

    Metric evaluation is the last place non-finite values can enter the
    clustering space (a derived ratio such as IPC turns finite counters
    into NaN/inf when the denominator is zero), so each column is
    checked here and reported by name instead of surfacing later as an
    anonymous scaler failure.
    """
    columns = []
    with np.errstate(divide="ignore", invalid="ignore"):
        for name in settings.metric_names:
            try:
                column = np.asarray(trace.metric(name), dtype=np.float64)
            except KeyError as exc:
                raise ClusteringError(
                    f"trace {trace.label()!r} cannot provide clustering "
                    f"metric {name!r}: {exc}"
                ) from exc
            if not np.isfinite(column).all():
                n_bad = int((~np.isfinite(column)).sum())
                raise ClusteringError(
                    f"metric {name!r} of trace {trace.label()!r} is NaN or "
                    f"infinite for {n_bad} burst(s) (zero denominator in a "
                    "derived ratio?)"
                )
            columns.append(column)
    return np.column_stack(columns)


def _clustering_space(
    trace: Trace, points: np.ndarray, settings: FrameSettings
) -> np.ndarray:
    """The space DBSCAN runs in, with the degenerate-input checks applied.

    Raises :class:`ClusteringError` for the inputs the clustering stage
    cannot handle (non-positive values under ``log_y``, all points
    identical).  Factored out of :func:`_cluster_labels` so the stream
    pipeline can pre-check windows without paying for DBSCAN.
    """
    clustering_columns = [points[:, i] for i in range(points.shape[1])]
    if settings.log_y:
        if np.any(clustering_columns[1] <= 0):
            raise ClusteringError(
                f"log_y requires strictly positive {settings.y_metric!r} "
                f"values; trace {trace.label()!r} has "
                f"{int((clustering_columns[1] <= 0).sum())} non-positive one(s)"
            )
        clustering_columns[1] = np.log10(clustering_columns[1])
    clustering_space = np.column_stack(clustering_columns)
    if np.all(clustering_space == clustering_space[0]):
        raise ClusteringError(
            f"all {points.shape[0]} bursts of trace {trace.label()!r} are "
            "identical in every clustering dimension "
            f"{settings.metric_names}; there is no structure to cluster"
        )
    return clustering_space


def precheck_frame_input(
    trace: Trace, settings: FrameSettings | None = None
) -> tuple[Trace, np.ndarray]:
    """Run the cheap stages that decide whether a trace can become a frame.

    Validation, the duration filter, metric extraction and the
    degenerate-space checks — everything :func:`make_frame` does except
    DBSCAN and cluster assembly (which cannot fail on a pre-checked
    input).  Returns ``(filtered_trace, raw_points)``; raises exactly
    the errors :func:`make_frame` would raise for the same input.  The
    stream pipeline uses this to decide which time windows survive
    before spending DBSCAN time on any of them.
    """
    from repro.robust.validate import validate_trace

    settings = settings or FrameSettings()
    trace = validate_trace(trace, strict=True)
    trace = _filtered_trace(trace, settings)
    points = _metric_points(trace, settings)
    _clustering_space(trace, points, settings)
    return trace, points


def _cluster_labels(
    trace: Trace,
    points: np.ndarray,
    settings: FrameSettings,
    *,
    shards: int = 1,
    shard_jobs: int | None = None,
) -> np.ndarray:
    """Run the expensive clustering stages: normalise, DBSCAN, rank, filter.

    With ``shards > 1`` the DBSCAN stage runs through
    :func:`repro.shard.sharded_dbscan` — per-rank-shard clusterings
    merged by cross-shard eps-reachability — whose labels are
    bit-identical to the whole-frame fit, so the frame (and every cache
    key derived from its labels) is independent of the shard count.
    """
    clustering_space = _clustering_space(trace, points, settings)

    scaler = MinMaxScaler.fit(clustering_space)
    scaled = scaler.transform(clustering_space)
    min_pts = settings.min_pts if settings.min_pts is not None else _auto_min_pts(
        points.shape[0]
    )
    if shards > 1:
        from repro.shard.cluster import shard_assignment, sharded_dbscan

        result = sharded_dbscan(
            scaled,
            settings.eps,
            min_pts,
            shard_assignment(trace.rank, shards),
            jobs=shard_jobs,
        )
    else:
        result = DBSCAN(eps=settings.eps, min_pts=min_pts).fit(scaled)

    durations = trace.duration
    with obs.span("clustering.rank_and_filter", relevance=settings.relevance):
        ranked = rank_labels_by_duration(result.labels, durations)
        ranked = _relevance_filter(ranked, durations, settings.relevance)
        # Renumber after the relevance filter so ids stay dense from 1.
        ranked = rank_labels_by_duration(ranked, durations)
    return ranked


def _assemble_frame(
    trace: Trace,
    settings: FrameSettings,
    points: np.ndarray,
    ranked: np.ndarray,
) -> Frame:
    """Build the cluster objects of a labelling and wrap them in a frame."""
    durations = trace.duration
    clusters: list[Cluster] = []
    for cluster_id in np.unique(ranked):
        if cluster_id == 0:
            continue
        indices = np.flatnonzero(ranked == cluster_id)
        callpaths = frozenset(
            str(trace.callstacks.path(int(pid)))
            for pid in np.unique(trace.callpath_id[indices])
        )
        clusters.append(
            Cluster(
                cluster_id=int(cluster_id),
                indices=indices,
                centroid=points[indices].mean(axis=0),
                total_duration=float(durations[indices].sum()),
                callpaths=callpaths,
                ranks=frozenset(int(r) for r in np.unique(trace.rank[indices])),
            )
        )
    clusters.sort(key=lambda c: c.cluster_id)
    if obs.enabled():
        noise = int((ranked == 0).sum())
        obs.count("clustering.points_total", trace.n_bursts)
        obs.count("clustering.noise_points_total", noise)
        obs.count("clustering.clusters_total", len(clusters))
        log.debug(
            "frame %s: %d bursts -> %d clusters (%d noise/filtered)",
            trace.label(), trace.n_bursts, len(clusters), noise,
        )
    return Frame(
        trace=trace,
        settings=settings,
        points=points,
        cluster_set=ClusterSet(labels=ranked, clusters=tuple(clusters)),
    )


def make_frame(
    trace: Trace,
    settings: FrameSettings | None = None,
    *,
    shards: int = 1,
    shard_jobs: int | None = None,
) -> Frame:
    """Build a :class:`Frame` from a trace.

    Pipeline: structural validation -> duration filter -> metric
    extraction -> per-frame min-max normalisation -> DBSCAN -> duration
    ranking -> relevance filter -> cluster object construction.

    ``shards > 1`` clusters through the sharded cluster-then-merge
    engine (see :mod:`repro.shard`); the resulting frame is
    bit-identical to the default whole-frame path at any shard count,
    so *shards* is a throughput knob, not part of the frame's identity
    (it deliberately does not appear in :class:`FrameSettings` or any
    cache key derived from it).

    Degenerate inputs (no/one burst, all points identical, a
    ``min_duration`` filter that removes everything) raise
    :class:`~repro.errors.ClusteringError`; structurally invalid traces
    raise :class:`~repro.errors.TraceError`.  Non-strict pipelines
    repair traces with :func:`repro.robust.validate_trace` *before*
    calling this.
    """
    from repro.robust.validate import validate_trace

    settings = settings or FrameSettings()
    trace = validate_trace(trace, strict=True)
    trace = _filtered_trace(trace, settings)
    with obs.span(
        "clustering.make_frame",
        label=trace.label(),
        n_bursts=trace.n_bursts,
        eps=settings.eps,
    ) as frame_span:
        points = _metric_points(trace, settings)
        ranked = _cluster_labels(
            trace, points, settings, shards=shards, shard_jobs=shard_jobs
        )
        frame = _assemble_frame(trace, settings, points, ranked)
        if obs.enabled():
            frame_span.set(
                n_clusters=frame.n_clusters, n_noise=int((ranked == 0).sum())
            )
        return frame


def frame_from_labels(
    trace: Trace, settings: FrameSettings | None, labels: np.ndarray
) -> Frame:
    """Rebuild a frame from a previously computed labelling.

    The labelling fully determines a frame given the trace and
    settings: points are recomputed (cheap, vectorised) and only the
    DBSCAN/ranking stages are skipped.  This is the warm path of the
    frame cache.  Raises :class:`ClusteringError` when *labels* cannot
    belong to the (filtered) trace, so callers can treat the entry as
    corrupt and recompute.
    """
    settings = settings or FrameSettings()
    trace = _filtered_trace(trace, settings)
    labels = np.asarray(labels, dtype=np.int32)
    if labels.shape != (trace.n_bursts,):
        raise ClusteringError(
            f"labelling of shape {labels.shape} does not match the "
            f"{trace.n_bursts}-burst trace {trace.label()!r}"
        )
    with obs.span(
        "clustering.frame_from_labels",
        label=trace.label(),
        n_bursts=trace.n_bursts,
    ):
        from repro.robust.validate import validate_frame

        points = _metric_points(trace, settings)
        return validate_frame(_assemble_frame(trace, settings, points, labels))


def _frame_task(task: tuple[int, Trace, FrameSettings]) -> Frame:
    """Worker-side task: build one frame (module-level for pickling).

    The ``clustering.frame`` span is recorded in-process on the serial
    backend; worker-process spans are not collected by the parent.
    """
    index, trace, settings = task
    with obs.span("clustering.frame", frame=index):
        return make_frame(trace, settings)


def _frame_task_quarantine(task: tuple[int, Trace, FrameSettings]):
    """Worker-side task for non-strict runs: never raises a ReproError.

    Returns the built :class:`Frame`, or an
    :class:`~repro.robust.partial.ItemFailure` when the trace cannot be
    clustered (so one bad trace does not abort the whole batch).
    """
    from repro.errors import ReproError
    from repro.robust.partial import ItemFailure

    index, trace, settings = task
    try:
        return _frame_task(task)
    except ReproError as exc:
        return ItemFailure.from_exception(trace.label(), "frame", exc)


def make_frames(
    traces: list[Trace],
    settings: FrameSettings | None = None,
    *,
    jobs: int | None = None,
    cache: "PipelineCache | None" = None,
) -> list[Frame]:
    """Build one frame per trace with shared settings.

    Parameters
    ----------
    traces:
        Input traces, one frame each; output order matches.
    settings:
        Shared frame-construction settings.
    jobs:
        Worker count for per-trace parallel construction (``None``
        defers to ``REPRO_JOBS``; 1 = serial).  Results are identical
        to the serial path.
    cache:
        Optional :class:`repro.parallel.cache.PipelineCache`; hits skip
        the DBSCAN/ranking stages, misses are computed and stored.
    """
    frames, failures = _make_frames_impl(
        traces, settings, jobs=jobs, cache=cache, strict=True
    )
    assert not failures  # strict mode propagates instead of quarantining
    return frames  # type: ignore[return-value]


def make_frames_partial(
    traces: list[Trace],
    settings: FrameSettings | None = None,
    *,
    jobs: int | None = None,
    cache: "PipelineCache | None" = None,
) -> tuple[list["Frame | None"], tuple["ItemFailure", ...]]:
    """Build frames with per-trace quarantine instead of aborting.

    Like :func:`make_frames`, but a trace whose frame construction fails
    with a :class:`~repro.errors.ReproError` yields ``None`` in the
    output list (positions match the input) plus an
    :class:`~repro.robust.partial.ItemFailure` record; the
    ``robust.quarantined_total`` obs counter tracks the drops.  This is
    the non-strict path of :func:`repro.api.quick_track` and
    :meth:`repro.analysis.study.ParametricStudy.run`.
    """
    return _make_frames_impl(traces, settings, jobs=jobs, cache=cache, strict=False)


def _make_frames_impl(
    traces: list[Trace],
    settings: FrameSettings | None,
    *,
    jobs: int | None,
    cache: "PipelineCache | None",
    strict: bool,
) -> tuple[list["Frame | None"], tuple["ItemFailure", ...]]:
    from repro.parallel.cache import frame_key
    from repro.parallel.executor import pmap
    from repro.robust.partial import ItemFailure

    settings = settings or FrameSettings()
    with obs.span("clustering.make_frames", n_traces=len(traces)) as frames_span:
        frames: list[Frame | None] = [None] * len(traces)
        failures: list[ItemFailure] = []
        keys: list[dict | None] = [None] * len(traces)
        pending: list[int] = []
        for index, trace in enumerate(traces):
            if cache is not None:
                keys[index] = frame_key(trace, settings)
                labels = cache.get_labels(keys[index])
                if labels is not None:
                    try:
                        frames[index] = frame_from_labels(trace, settings, labels)
                        continue
                    except ClusteringError:
                        cache.invalidate(keys[index])
            pending.append(index)
        if pending:
            built = pmap(
                _frame_task if strict else _frame_task_quarantine,
                [(index, traces[index], settings) for index in pending],
                jobs=jobs,
                label="clustering.make_frames.pmap",
            )
            for index, frame in zip(pending, built):
                if isinstance(frame, ItemFailure):
                    failures.append(frame)
                    obs.count("robust.quarantined_total", stage="frame")
                    log.warning("quarantined frame: %s", frame)
                    continue
                frames[index] = frame
                if cache is not None:
                    cache.put_labels(keys[index], frame.labels)
        if obs.enabled():
            frames_span.set(
                n_cached=len(traces) - len(pending), n_quarantined=len(failures)
            )
        return frames, tuple(failures)
