"""Density-based clustering (DBSCAN), implemented from scratch.

The BSC cluster-analysis tool the paper builds on (Gonzalez et al.,
IPDPS'09) uses DBSCAN to group CPU bursts by similarity in the selected
metric space: density clustering needs no a-priori cluster count and
marks sparse points as noise, both essential when the number of
behavioural regions is unknown and instrumentation noise is present.

scikit-learn is not available in this environment, so this is a clean
classic implementation: neighbourhoods come from a
:class:`scipy.spatial.cKDTree` ball query, core points are those with
at least ``min_pts`` neighbours (inclusive of themselves), and clusters
are grown breadth-first from unvisited core points.  Border points are
assigned to the first cluster that reaches them, exactly as in the
original Ester et al. (1996) formulation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

from repro import obs
from repro.errors import ClusteringError

__all__ = ["DBSCAN", "DBSCANResult", "NOISE"]

#: Label given to noise points.  Cluster labels start at 1 so that the
#: plots and tables read like the paper's ("Cluster 0" is reserved).
NOISE = 0


@dataclass(frozen=True, slots=True)
class DBSCANResult:
    """Outcome of one DBSCAN run.

    Attributes
    ----------
    labels:
        Per-point cluster label; ``NOISE`` (0) marks noise, clusters are
        numbered from 1 in discovery order (renumbered by callers that
        want duration ranking).
    n_clusters:
        Number of clusters found.
    core_mask:
        Boolean mask of core points.
    """

    labels: np.ndarray
    n_clusters: int
    core_mask: np.ndarray

    def cluster_indices(self, label: int) -> np.ndarray:
        """Indices of the points carrying *label*."""
        return np.flatnonzero(self.labels == label)

    @property
    def noise_indices(self) -> np.ndarray:
        """Indices of noise points."""
        return np.flatnonzero(self.labels == NOISE)


class DBSCAN:
    """Classic DBSCAN clusterer.

    Parameters
    ----------
    eps:
        Neighbourhood radius in the (already normalised) metric space.
    min_pts:
        Minimum neighbourhood size (including the point itself) for a
        point to be *core*.

    Notes
    -----
    Complexity is ``O(n log n)`` for the tree build plus the total size
    of all neighbourhoods for the expansion, which is ample for the
    10^4-10^5 bursts per frame this package works with.
    """

    def __init__(self, eps: float, min_pts: int) -> None:
        if eps <= 0:
            raise ClusteringError(f"eps must be > 0, got {eps}")
        if min_pts < 1:
            raise ClusteringError(f"min_pts must be >= 1, got {min_pts}")
        self.eps = float(eps)
        self.min_pts = int(min_pts)

    def fit(self, points: np.ndarray) -> DBSCANResult:
        """Cluster *points* (shape ``(n, d)``) and return the labelling."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ClusteringError(
                f"points must be a 2-D array, got shape {points.shape}"
            )
        n = points.shape[0]
        if n == 0:
            return DBSCANResult(
                labels=np.zeros(0, dtype=np.int32),
                n_clusters=0,
                core_mask=np.zeros(0, dtype=bool),
            )
        if not np.isfinite(points).all():
            raise ClusteringError("points contain NaN or infinite values")

        with obs.span(
            "clustering.dbscan", n_points=n, eps=self.eps, min_pts=self.min_pts
        ) as fit_span:
            tree = cKDTree(points)
            # Expansion never needs sorted neighbourhoods; skipping the
            # sort saves time on dense frames.
            neighborhoods = tree.query_ball_point(
                points, self.eps, workers=-1, return_sorted=False
            )
            neighbor_counts = np.fromiter(
                (len(nb) for nb in neighborhoods), count=n, dtype=np.int64
            )
            core_mask = neighbor_counts >= self.min_pts

            labels = np.full(n, NOISE, dtype=np.int32)
            visited = np.zeros(n, dtype=bool)
            current_label = 0

            for seed in range(n):
                if visited[seed] or not core_mask[seed]:
                    continue
                current_label += 1
                # Breadth-first expansion from this core point.  Each
                # cluster's core-connected component is exhausted before
                # the next seed starts, so the traversal discipline
                # (FIFO here, LIFO, any order) cannot change the
                # labelling — only which points are *visited* first.
                queue = deque([seed])
                visited[seed] = True
                labels[seed] = current_label
                while queue:
                    point = queue.popleft()
                    # Only core points expand the cluster; border points are
                    # claimed but not traversed.
                    if not core_mask[point]:
                        continue
                    for neighbor in neighborhoods[point]:
                        if labels[neighbor] == NOISE and not visited[neighbor]:
                            labels[neighbor] = current_label
                            visited[neighbor] = True
                            if core_mask[neighbor]:
                                queue.append(neighbor)
            if obs.enabled():
                fit_span.set(n_clusters=current_label, n_core=int(core_mask.sum()))
            return DBSCANResult(
                labels=labels, n_clusters=current_label, core_mask=core_mask
            )
