"""Density-based clustering (DBSCAN), implemented from scratch.

The BSC cluster-analysis tool the paper builds on (Gonzalez et al.,
IPDPS'09) uses DBSCAN to group CPU bursts by similarity in the selected
metric space: density clustering needs no a-priori cluster count and
marks sparse points as noise, both essential when the number of
behavioural regions is unknown and instrumentation noise is present.

scikit-learn is not available in this environment, so this is a clean
classic implementation with two interchangeable engines:

- :func:`dbscan_reference` — the textbook formulation: neighbourhoods
  from a :class:`scipy.spatial.cKDTree` ball query, clusters grown
  breadth-first from unvisited core points, border points assigned to
  the first cluster that reaches them (Ester et al., 1996).  Kept as
  the executable specification the property suite checks against.
- :meth:`DBSCAN.fit` — a grid-bucketed, vectorised engine that
  produces **bit-identical** labels without ever walking Python-level
  neighbour lists.  See the *Equivalence* notes below.

Equivalence
-----------
The BFS labelling is fully determined by three facts, which the
vectorised engine computes directly:

1. *Core points* are those with ``>= min_pts`` neighbours within
   ``eps`` (self included) — independent of traversal order.
2. *Clusters* are the connected components of the core points under
   eps-adjacency.  The BFS numbers them from 1 in seed-discovery
   order, and the seed of a component is always its minimum-index core
   point, so: **a component's label is 1 + the rank of its minimum
   core-point index**.
3. *Border points* (non-core, within ``eps`` of some core point) are
   claimed by the first cluster whose expansion reaches them.  Since
   clusters are expanded to exhaustion in label order, that is always
   **the smallest label among the components of its core
   neighbours** — again independent of traversal order inside one
   cluster.

The grid engine buckets points into cells of width ``eps/sqrt(d)``
(shrunk by one part in 10^12): any two points in one cell are strictly
within ``eps`` of each other, so a cell with ``>= min_pts`` members is
a clique of core points and needs no counting at all.  Remaining
counts come from a single ``query_ball_point(..., return_length=True)``
pass — no neighbour lists are ever materialised.  Components are found
on the tiny *cell* graph (two cells connect iff some core pair across
them is within ``eps``), and border claims reduce to one ball query
per cluster in label order.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.csgraph import connected_components
from scipy.spatial import cKDTree

from repro import obs
from repro.errors import ClusteringError

__all__ = ["DBSCAN", "DBSCANResult", "NOISE", "dbscan_reference"]

#: Label given to noise points.  Cluster labels start at 1 so that the
#: plots and tables read like the paper's ("Cluster 0" is reserved).
NOISE = 0

#: Cell widths are eps/sqrt(d) shrunk by this relative margin so the
#: in-cell diameter stays strictly below eps even after rounding.
_CELL_MARGIN = 1.0 - 1e-12

#: Relative slack applied to the bounding-box distance screens; pairs
#: inside the slack band fall through to scipy's own ball predicate.
_BBOX_SLACK = 1e-9


@dataclass(frozen=True, slots=True)
class DBSCANResult:
    """Outcome of one DBSCAN run.

    Attributes
    ----------
    labels:
        Per-point cluster label; ``NOISE`` (0) marks noise, clusters are
        numbered from 1 in discovery order (renumbered by callers that
        want duration ranking).
    n_clusters:
        Number of clusters found.
    core_mask:
        Boolean mask of core points.
    """

    labels: np.ndarray
    n_clusters: int
    core_mask: np.ndarray

    def cluster_indices(self, label: int) -> np.ndarray:
        """Indices of the points carrying *label*."""
        return np.flatnonzero(self.labels == label)

    @property
    def noise_indices(self) -> np.ndarray:
        """Indices of noise points."""
        return np.flatnonzero(self.labels == NOISE)


def _validate_points(points: np.ndarray) -> np.ndarray:
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ClusteringError(
            f"points must be a 2-D array, got shape {points.shape}"
        )
    if points.size and not np.isfinite(points).all():
        raise ClusteringError("points contain NaN or infinite values")
    return points


def _empty_result() -> DBSCANResult:
    return DBSCANResult(
        labels=np.zeros(0, dtype=np.int32),
        n_clusters=0,
        core_mask=np.zeros(0, dtype=bool),
    )


def dbscan_reference(
    points: np.ndarray, eps: float, min_pts: int
) -> DBSCANResult:
    """Textbook DBSCAN: ball-query neighbourhoods + breadth-first growth.

    This is the executable specification of the labelling semantics;
    :meth:`DBSCAN.fit` must agree with it bit-for-bit (see the module
    docstring) and the property suite enforces that.
    """
    points = _validate_points(points)
    n = points.shape[0]
    if n == 0:
        return _empty_result()

    tree = cKDTree(points)
    # Expansion never needs sorted neighbourhoods; skipping the sort
    # saves time on dense frames.
    neighborhoods = tree.query_ball_point(
        points, eps, workers=-1, return_sorted=False
    )
    neighbor_counts = np.fromiter(
        (len(nb) for nb in neighborhoods), count=n, dtype=np.int64
    )
    core_mask = neighbor_counts >= min_pts

    labels = np.full(n, NOISE, dtype=np.int32)
    visited = np.zeros(n, dtype=bool)
    current_label = 0

    for seed in range(n):
        if visited[seed] or not core_mask[seed]:
            continue
        current_label += 1
        # Breadth-first expansion from this core point.  Each cluster's
        # core-connected component is exhausted before the next seed
        # starts, so the traversal discipline (FIFO here, LIFO, any
        # order) cannot change the labelling — only which points are
        # *visited* first.
        queue = deque([seed])
        visited[seed] = True
        labels[seed] = current_label
        while queue:
            point = queue.popleft()
            # Only core points expand the cluster; border points are
            # claimed but not traversed.
            if not core_mask[point]:
                continue
            for neighbor in neighborhoods[point]:
                if labels[neighbor] == NOISE and not visited[neighbor]:
                    labels[neighbor] = current_label
                    visited[neighbor] = True
                    if core_mask[neighbor]:
                        queue.append(neighbor)
    return DBSCANResult(
        labels=labels, n_clusters=current_label, core_mask=core_mask
    )


class _Grid:
    """Points bucketed into axis-aligned cells of width ``eps/sqrt(d)``.

    Encodes each cell as a single collision-free int64 key (coordinates
    are padded by the neighbour radius, so ``key + offset @ strides``
    never wraps into a different valid cell).
    """

    def __init__(self, points: np.ndarray, eps: float) -> None:
        n, d = points.shape
        self.points = points
        self.eps = eps
        self.width = eps * _CELL_MARGIN / np.sqrt(d)
        # Offsets whose cells could hold a point within eps: per-dim
        # gap between cells at offset k is (|k|-1) widths.
        self.radius = int(np.ceil(np.sqrt(d))) + 1
        if (2 * self.radius + 1) ** d > 200_000:
            raise OverflowError("neighbour offset table too large")

        coords = np.floor(points / self.width)
        if not np.isfinite(coords).all():
            raise OverflowError("cell coordinates overflow")
        coords = coords.astype(np.int64)
        coords -= coords.min(axis=0) - self.radius
        extents = coords.max(axis=0) + self.radius + 1
        if np.log2(extents.astype(np.float64)).sum() >= 62:
            raise OverflowError("cell key space exceeds int64")
        strides = np.ones(d, dtype=np.int64)
        strides[:-1] = np.cumprod(extents[::-1])[-2::-1]
        self.strides = strides

        point_keys = coords @ strides
        # Sorted unique keys: cell id == rank of its key, so neighbour
        # lookups are a searchsorted away.
        self.keys, self.cell_of_point, self.cell_counts = np.unique(
            point_keys, return_inverse=True, return_counts=True
        )

        grids = np.meshgrid(
            *([np.arange(-self.radius, self.radius + 1)] * d), indexing="ij"
        )
        offsets = np.stack([g.ravel() for g in grids], axis=1)
        # Keep one representative per unordered pair (lexicographically
        # positive offsets) and drop those whose minimum possible
        # point-to-point distance already exceeds eps.
        positive = np.zeros(len(offsets), dtype=bool)
        undecided = np.ones(len(offsets), dtype=bool)
        for k in range(d):
            positive |= undecided & (offsets[:, k] > 0)
            undecided &= offsets[:, k] == 0
        gap = np.maximum(np.abs(offsets) - 1, 0) * self.width
        reachable = np.sqrt((gap * gap).sum(axis=1)) <= eps * (1 + _BBOX_SLACK)
        self.offsets = offsets[positive & reachable]


def _rank_components(comp: np.ndarray, n_comp: int, core_idx: np.ndarray) -> np.ndarray:
    """1-based cluster label per component: rank of its min core index."""
    first = np.full(n_comp, core_idx.max() + 1, dtype=np.int64)
    np.minimum.at(first, comp, core_idx)
    rank = np.empty(n_comp, dtype=np.int32)
    rank[np.argsort(first, kind="stable")] = np.arange(1, n_comp + 1, dtype=np.int32)
    return rank


class DBSCAN:
    """Classic DBSCAN clusterer, grid-bucketed and vectorised.

    Parameters
    ----------
    eps:
        Neighbourhood radius in the (already normalised) metric space.
    min_pts:
        Minimum neighbourhood size (including the point itself) for a
        point to be *core*.

    Notes
    -----
    Produces labels bit-identical to :func:`dbscan_reference` (see the
    module docstring for why) in roughly ``O(n log n)`` with all
    per-point work in vectorised numpy/scipy — no Python-level
    neighbour-list walks.  Degenerate inputs whose cell grid would
    overflow int64 keys fall back to the reference engine.
    """

    def __init__(self, eps: float, min_pts: int) -> None:
        if eps <= 0:
            raise ClusteringError(f"eps must be > 0, got {eps}")
        if min_pts < 1:
            raise ClusteringError(f"min_pts must be >= 1, got {min_pts}")
        self.eps = float(eps)
        self.min_pts = int(min_pts)

    def fit(self, points: np.ndarray) -> DBSCANResult:
        """Cluster *points* (shape ``(n, d)``) and return the labelling."""
        points = _validate_points(points)
        n = points.shape[0]
        if n == 0:
            return _empty_result()

        with obs.span(
            "clustering.dbscan", n_points=n, eps=self.eps, min_pts=self.min_pts
        ) as fit_span:
            try:
                grid = _Grid(points, self.eps)
            except OverflowError:
                result = dbscan_reference(points, self.eps, self.min_pts)
                if obs.enabled():
                    fit_span.set(
                        n_clusters=result.n_clusters,
                        n_core=int(result.core_mask.sum()),
                        engine="reference",
                    )
                return result
            core_mask = self._core_mask(grid)
            labels = self._label(grid, core_mask)
            n_clusters = int(labels.max(initial=0))
            if obs.enabled():
                fit_span.set(n_clusters=n_clusters, n_core=int(core_mask.sum()))
            return DBSCANResult(
                labels=labels, n_clusters=n_clusters, core_mask=core_mask
            )

    def _core_mask(self, grid: _Grid) -> np.ndarray:
        """Core points without materialising neighbourhoods.

        A cell of ``>= min_pts`` points is a mutual-eps clique, so its
        members are core with no counting.  Only the sparse remainder
        pays one ``return_length=True`` ball query (counts only, no
        lists).
        """
        core_mask = (grid.cell_counts >= self.min_pts)[grid.cell_of_point]
        sparse_idx = np.flatnonzero(~core_mask)
        if sparse_idx.size:
            counts = cKDTree(grid.points).query_ball_point(
                grid.points[sparse_idx], self.eps, workers=-1,
                return_length=True,
            )
            core_mask[sparse_idx] = counts >= self.min_pts
        return core_mask

    def _label(self, grid: _Grid, core_mask: np.ndarray) -> np.ndarray:
        n = grid.points.shape[0]
        labels = np.full(n, NOISE, dtype=np.int32)
        core_idx = np.flatnonzero(core_mask)
        if core_idx.size == 0:
            return labels

        # Group core points by cell (cells keep their sorted-key order).
        core_cell_all = grid.cell_of_point[core_idx]
        order = np.argsort(core_cell_all, kind="stable")
        grouped = core_idx[order]
        cells, starts, counts = np.unique(
            core_cell_all[order], return_index=True, return_counts=True
        )
        comp = self._cell_components(grid, cells, starts, counts, grouped)

        # Label per core point: rank of its component's min core index.
        comp_pt = comp[np.searchsorted(cells, core_cell_all)]
        rank = _rank_components(comp_pt, int(comp.max()) + 1, core_idx)
        labels[core_idx] = rank[comp_pt]

        self._claim_borders(grid, labels, core_mask, int(rank.max()))
        return labels

    def _cell_components(
        self,
        grid: _Grid,
        cells: np.ndarray,
        starts: np.ndarray,
        counts: np.ndarray,
        grouped: np.ndarray,
    ) -> np.ndarray:
        """Connected components of core-occupied cells under eps-adjacency.

        Exact: core points inside one cell are a clique, so the core
        adjacency graph and this cell graph have identical components.
        """
        n_cells = len(cells)
        if n_cells == 1:
            return np.zeros(1, dtype=np.int64)
        core_pts = grid.points[grouped]
        ends = starts + counts
        # Per-cell bounding boxes of the core points, for the distance
        # screens below.
        box_min = np.minimum.reduceat(core_pts, starts, axis=0)
        box_max = np.maximum.reduceat(core_pts, starts, axis=0)

        cell_keys = grid.keys[cells]
        edges_a: list[np.ndarray] = []
        edges_b: list[np.ndarray] = []
        eps = self.eps
        lo_cut = eps * (1 + _BBOX_SLACK)
        hi_cut = eps * (1 - _BBOX_SLACK)
        trees: dict[int, cKDTree] = {}
        for offset in grid.offsets:
            shift = int(offset @ grid.strides)
            pos = np.searchsorted(cell_keys, cell_keys + shift)
            pos = np.clip(pos, 0, n_cells - 1)
            src = np.flatnonzero(cell_keys[pos] == cell_keys + shift)
            if not src.size:
                continue
            dst = pos[src]
            # Screen 1: boxes further apart than eps cannot connect.
            gap = np.maximum(
                np.maximum(box_min[dst] - box_max[src],
                           box_min[src] - box_max[dst]),
                0.0,
            )
            near = np.sqrt((gap * gap).sum(axis=1)) <= lo_cut
            src, dst = src[near], dst[near]
            if not src.size:
                continue
            # Screen 2: boxes whose farthest corners are inside eps
            # always connect.
            span = np.maximum(box_max[dst], box_max[src]) - np.minimum(
                box_min[dst], box_min[src]
            )
            sure = np.sqrt((span * span).sum(axis=1)) <= hi_cut
            edges_a.append(src[sure])
            edges_b.append(dst[sure])
            # The borderline remainder gets scipy's own ball predicate,
            # so boundary-distance rounding matches the reference run.
            for a, b in zip(src[~sure], dst[~sure]):
                tree = trees.get(a)
                if tree is None:
                    tree = trees[a] = cKDTree(core_pts[starts[a]:ends[a]])
                hits = tree.query_ball_point(
                    core_pts[starts[b]:ends[b]], eps, return_length=True
                )
                if hits.any():
                    edges_a.append(np.array([a]))
                    edges_b.append(np.array([b]))

        if edges_a:
            row = np.concatenate(edges_a)
            col = np.concatenate(edges_b)
        else:
            row = col = np.zeros(0, dtype=np.int64)
        graph = coo_matrix(
            (np.ones(len(row), dtype=np.int8), (row, col)),
            shape=(n_cells, n_cells),
        )
        _, comp = connected_components(graph, directed=False)
        return comp

    def _claim_borders(
        self,
        grid: _Grid,
        labels: np.ndarray,
        core_mask: np.ndarray,
        n_clusters: int,
    ) -> None:
        """Assign border points: smallest label among core eps-neighbours.

        Equivalent to the BFS first-claim rule because clusters are
        expanded to exhaustion in label order (module docstring).
        """
        noncore_idx = np.flatnonzero(~core_mask)
        if not noncore_idx.size:
            return
        core_idx = np.flatnonzero(core_mask)
        near_core = cKDTree(grid.points[core_idx]).query_ball_point(
            grid.points[noncore_idx], self.eps, workers=-1, return_length=True
        )
        remaining = noncore_idx[near_core > 0]
        for label in range(1, n_clusters + 1):
            if not remaining.size:
                return
            members = core_idx[labels[core_idx] == label]
            claimed = cKDTree(grid.points[members]).query_ball_point(
                grid.points[remaining], self.eps, workers=-1,
                return_length=True,
            ) > 0
            labels[remaining[claimed]] = label
            remaining = remaining[~claimed]
