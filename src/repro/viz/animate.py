"""Animated view of a tracked frame sequence.

The paper: "these scatter plots can be displayed in a simple animation,
so that it is very easy to identify variations in the performance
space".  This module writes a single self-contained HTML file embedding
every tracked frame as an inline SVG with play/pause/step controls —
no server, no JavaScript dependencies, opens in any browser.
"""

from __future__ import annotations

from pathlib import Path
from xml.sax.saxutils import escape

import numpy as np

from repro.tracking.relabel import RelabeledFrame
from repro.viz.frames_plot import _scatter
from repro.viz.svg import Axes, SVGCanvas

__all__ = ["render_animation_html"]

_PAGE_TEMPLATE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{title}</title>
<style>
 body {{ font-family: sans-serif; margin: 2em; background: #fafafa; }}
 #stage svg {{ border: 1px solid #ccc; background: white; }}
 .frame {{ display: none; }}
 .frame.active {{ display: block; }}
 #controls {{ margin: 1em 0; }}
 button {{ font-size: 1em; padding: 0.3em 1em; margin-right: 0.5em; }}
 #label {{ font-weight: bold; margin-left: 1em; }}
</style>
</head>
<body>
<h1>{title}</h1>
<div id="controls">
 <button id="prev">&#9664;</button>
 <button id="play">Play</button>
 <button id="next">&#9654;</button>
 <span id="label"></span>
</div>
<div id="stage">
{frames}
</div>
<script>
const frames = Array.from(document.querySelectorAll('.frame'));
const labels = {labels};
let current = 0;
let timer = null;
function show(index) {{
  frames[current].classList.remove('active');
  current = (index + frames.length) % frames.length;
  frames[current].classList.add('active');
  document.getElementById('label').textContent =
    (current + 1) + ' / ' + frames.length + ': ' + labels[current];
}}
document.getElementById('prev').onclick = () => show(current - 1);
document.getElementById('next').onclick = () => show(current + 1);
document.getElementById('play').onclick = function () {{
  if (timer) {{ clearInterval(timer); timer = null; this.textContent = 'Play'; }}
  else {{ timer = setInterval(() => show(current + 1), {interval_ms});
         this.textContent = 'Pause'; }}
}};
show(0);
</script>
</body>
</html>
"""


def _frame_svg(item: RelabeledFrame, axes: Axes, *, width: int, height: int) -> str:
    canvas = SVGCanvas(width=width, height=height)
    axes.draw_frame(
        canvas,
        x_label=item.frame.settings.x_metric,
        y_label=item.frame.settings.y_metric,
    )
    _scatter(canvas, axes, item.frame.plot_points, item.labels)
    return canvas.to_string()


def render_animation_html(
    relabeled: list[RelabeledFrame],
    path: str | Path,
    *,
    title: str = "Tracked performance space",
    width: int = 640,
    height: int = 460,
    interval_ms: int = 900,
    shared_axes: bool = True,
) -> Path:
    """Write the animated HTML page; returns the path written.

    With *shared_axes* (default) all frames are drawn on the union of
    the raw metric ranges, so motion between frames is the real
    displacement of the objects; otherwise each frame auto-scales.
    """
    if not relabeled:
        raise ValueError("render_animation_html needs at least one frame")
    if interval_ms <= 0:
        raise ValueError("interval_ms must be positive")

    if shared_axes:
        stacked = np.vstack([item.frame.plot_points for item in relabeled])
        template = SVGCanvas(width=width, height=height)
        axes = Axes.fit(template, stacked[:, 0], stacked[:, 1])

    parts: list[str] = []
    labels: list[str] = []
    for index, item in enumerate(relabeled):
        if not shared_axes:
            template = SVGCanvas(width=width, height=height)
            axes = Axes.fit(
                template, item.frame.plot_points[:, 0], item.frame.plot_points[:, 1]
            )
        svg = _frame_svg(item, axes, width=width, height=height)
        active = " active" if index == 0 else ""
        parts.append(f'<div class="frame{active}">{svg}</div>')
        labels.append(item.frame.label)

    import json

    page = _PAGE_TEMPLATE.format(
        title=escape(title),
        frames="\n".join(parts),
        labels=json.dumps(labels),
        interval_ms=interval_ms,
    )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(page, encoding="utf-8")
    return path
