"""Dependency-free visualisation of frames, trends and timelines.

matplotlib is not available in this environment, so the package renders
the paper's figures in two forms:

- **ASCII** (:mod:`~repro.viz.ascii_plot`): scatter plots and trend
  charts printed straight to the terminal — what the benches show;
- **SVG** (:mod:`~repro.viz.svg`): a minimal hand-rolled SVG writer and
  renderers producing standalone vector images of frames (Fig. 1/6/8/9
  style), trend lines (Fig. 7/10/11/12) and cluster timelines (Fig. 4).
"""

from __future__ import annotations

from repro.viz.animate import render_animation_html
from repro.viz.ascii_plot import ascii_scatter, ascii_trend
from repro.viz.frames_plot import render_frame_svg, render_sequence_svg
from repro.viz.svg import SVGCanvas
from repro.viz.timeline import ascii_timeline, render_timeline_svg
from repro.viz.trend_plot import render_trends_svg

__all__ = [
    "ascii_scatter",
    "ascii_trend",
    "ascii_timeline",
    "SVGCanvas",
    "render_frame_svg",
    "render_sequence_svg",
    "render_trends_svg",
    "render_timeline_svg",
    "render_animation_html",
]
