"""Cluster timelines: processes x time, coloured by cluster (Figure 4).

The paper's Figure 4 shows the temporal sequence of clusters at the
start of one iteration — all ranks marching through the same phases
simultaneously, with occasional divergence where behaviour is bimodal.
These renderers reproduce that view from a frame.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.clustering.frames import Frame
from repro.viz.ascii_plot import glyph_for
from repro.viz.svg import SVGCanvas, color_for

__all__ = ["ascii_timeline", "render_timeline_svg"]


def _window(frame: Frame, t_start: float | None, t_end: float | None):
    trace = frame.trace
    begin = trace.begin
    end = trace.end
    lo = float(begin.min()) if t_start is None else t_start
    hi = float(end.max()) if t_end is None else t_end
    return lo, hi


def ascii_timeline(
    frame: Frame,
    *,
    width: int = 96,
    max_ranks: int = 32,
    t_start: float | None = None,
    t_end: float | None = None,
    labels: np.ndarray | None = None,
) -> str:
    """Render the cluster timeline of a frame as text.

    One row per rank (subsampled beyond *max_ranks*), one column per
    time slot; each cell shows the cluster whose burst covers the slot.
    """
    trace = frame.trace
    labs = frame.labels if labels is None else labels
    lo, hi = _window(frame, t_start, t_end)
    span = max(hi - lo, 1e-12)
    ranks = np.unique(trace.rank)
    if ranks.size > max_ranks:
        ranks = ranks[np.linspace(0, ranks.size - 1, max_ranks).astype(int)]
    lines = [f"timeline {frame.label}  [{lo:.4g}s .. {hi:.4g}s]"]
    for rank in ranks.tolist():
        mask = trace.rank == rank
        row = [" "] * width
        for b, e, lab in zip(
            trace.begin[mask].tolist(),
            trace.end[mask].tolist(),
            labs[mask].tolist(),
        ):
            if e < lo or b > hi or lab == 0:
                continue
            c0 = int(max((b - lo) / span, 0.0) * (width - 1))
            c1 = int(min((e - lo) / span, 1.0) * (width - 1))
            for c in range(c0, c1 + 1):
                row[c] = glyph_for(int(lab))
        lines.append(f"{rank:>5} |" + "".join(row))
    return "\n".join(lines)


def render_timeline_svg(
    frame: Frame,
    path: str | Path,
    *,
    width: int = 900,
    row_height: int = 8,
    max_ranks: int = 64,
    t_start: float | None = None,
    t_end: float | None = None,
    labels: np.ndarray | None = None,
) -> Path:
    """Render the cluster timeline of a frame as an SVG Gantt strip."""
    trace = frame.trace
    labs = frame.labels if labels is None else labels
    lo, hi = _window(frame, t_start, t_end)
    span = max(hi - lo, 1e-12)
    ranks = np.unique(trace.rank)
    if ranks.size > max_ranks:
        ranks = ranks[np.linspace(0, ranks.size - 1, max_ranks).astype(int)]
    left, top = 50, 30
    height = top + row_height * ranks.size + 30
    canvas = SVGCanvas(width=width, height=height)
    plot_width = width - left - 20
    canvas.text(width / 2, 16, f"{frame.label} cluster timeline", anchor="middle", size=12)
    for row_index, rank in enumerate(ranks.tolist()):
        y = top + row_index * row_height
        mask = trace.rank == rank
        for b, e, lab in zip(
            trace.begin[mask].tolist(),
            trace.end[mask].tolist(),
            labs[mask].tolist(),
        ):
            if e < lo or b > hi or lab == 0:
                continue
            x0 = left + max((b - lo) / span, 0.0) * plot_width
            x1 = left + min((e - lo) / span, 1.0) * plot_width
            canvas.rect(
                x0,
                y,
                max(x1 - x0, 0.5),
                row_height - 1,
                fill=color_for(int(lab)),
                stroke="none",
            )
        if row_index % max(1, ranks.size // 8) == 0:
            canvas.text(left - 6, y + row_height, str(rank), size=8, anchor="end")
    canvas.text(left, height - 8, f"{lo:.4g}s", size=9)
    canvas.text(width - 20, height - 8, f"{hi:.4g}s", size=9, anchor="end")
    return canvas.save(path)
