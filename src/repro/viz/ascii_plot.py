"""ASCII renderings of scatter plots and trend charts.

These are what the benchmark harnesses print: a terminal-sized view of
the performance-space frames (clusters as digit/letter glyphs) and of
per-region trend lines, faithful enough to eyeball the same structure
the paper's figures show.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ascii_scatter", "ascii_trend", "glyph_for"]

_GLYPHS = "123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def glyph_for(cluster_id: int) -> str:
    """Single-character glyph of a cluster/region id (0 = noise dot)."""
    if cluster_id <= 0:
        return "."
    if cluster_id <= len(_GLYPHS):
        return _GLYPHS[cluster_id - 1]
    return "#"


def ascii_scatter(
    points: np.ndarray,
    labels: np.ndarray,
    *,
    width: int = 72,
    height: int = 20,
    x_label: str = "x",
    y_label: str = "y",
    title: str = "",
    show_noise: bool = False,
) -> str:
    """Render labelled 2-D points as a character grid.

    Each grid cell shows the most frequent cluster among the points that
    fall in it; noise points are hidden unless *show_noise*.
    """
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError(f"points must be (n, 2), got {points.shape}")
    if points.shape[0] != labels.shape[0]:
        raise ValueError("points and labels must have equal length")

    keep = np.ones(points.shape[0], dtype=bool) if show_noise else labels != 0
    pts = points[keep]
    labs = labels[keep]
    lines: list[str] = []
    if title:
        lines.append(title)
    if pts.shape[0] == 0:
        lines.append("(no points)")
        return "\n".join(lines)

    lo = pts.min(axis=0)
    hi = pts.max(axis=0)
    span = np.where(hi - lo > 0, hi - lo, 1.0)
    cols = np.minimum(((pts[:, 0] - lo[0]) / span[0] * (width - 1)).astype(int), width - 1)
    rows = np.minimum(((pts[:, 1] - lo[1]) / span[1] * (height - 1)).astype(int), height - 1)

    # Majority label per cell.
    grid = np.zeros((height, width), dtype=np.int64)
    counts: dict[tuple[int, int], dict[int, int]] = {}
    for r, c, lab in zip(rows.tolist(), cols.tolist(), labs.tolist()):
        cell = counts.setdefault((r, c), {})
        cell[lab] = cell.get(lab, 0) + 1
    for (r, c), cell in counts.items():
        grid[r, c] = max(cell, key=cell.__getitem__)

    for r in range(height - 1, -1, -1):
        row = "".join(glyph_for(int(v)) if v else " " for v in grid[r])
        lines.append("|" + row)
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: [{lo[0]:.3g} .. {hi[0]:.3g}]   "
                 f"{y_label}: [{lo[1]:.3g} .. {hi[1]:.3g}]")
    return "\n".join(lines)


def ascii_trend(
    series: list[tuple[str, np.ndarray]],
    *,
    width: int = 72,
    height: int = 16,
    x_labels: tuple[str, ...] | None = None,
    title: str = "",
) -> str:
    """Render several named series over a shared x (frame index) axis.

    Parameters
    ----------
    series:
        ``(name, values)`` pairs; all values arrays share their length.
        The first character of each name is used as the line glyph.
    """
    if not series:
        return title or "(no series)"
    n = len(series[0][1])
    for name, values in series:
        if len(values) != n:
            raise ValueError(f"series {name!r} length differs")
    stacked = np.asarray([values for _, values in series], dtype=np.float64)
    finite = stacked[np.isfinite(stacked)]
    lines: list[str] = []
    if title:
        lines.append(title)
    if finite.size == 0 or n == 0:
        lines.append("(no data)")
        return "\n".join(lines)
    lo, hi = float(finite.min()), float(finite.max())
    span = hi - lo if hi > lo else 1.0

    grid = [[" "] * width for _ in range(height)]
    xs = (
        np.linspace(0, width - 1, n).astype(int)
        if n > 1
        else np.asarray([width // 2])
    )
    for index, (name, values) in enumerate(series):
        glyph = _GLYPHS[index % len(_GLYPHS)]
        for i, value in enumerate(values):
            if not np.isfinite(value):
                continue
            row = int((value - lo) / span * (height - 1))
            grid[row][xs[i]] = glyph
    for r in range(height - 1, -1, -1):
        lines.append("|" + "".join(grid[r]))
    lines.append("+" + "-" * width)
    if x_labels:
        shown = ", ".join(x_labels)
        lines.append(f" x: {shown}" if len(shown) < width else f" x: {len(x_labels)} frames")
    lines.append(f" y: [{lo:.4g} .. {hi:.4g}]")
    legend = "  ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]}={name}" for i, (name, _) in enumerate(series)
    )
    lines.append(" " + legend)
    return "\n".join(lines)
