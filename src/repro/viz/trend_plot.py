"""SVG trend-line charts (paper Figures 7, 10, 11, 12).

One polyline per tracked region over the frame sequence, coloured by
region id, with the frame labels along the x axis.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.tracking.trends import TrendSeries
from repro.viz.svg import Axes, SVGCanvas, color_for

__all__ = ["render_trends_svg", "trends_canvas"]


def render_trends_svg(
    series: list[TrendSeries],
    path: str | Path,
    *,
    title: str = "",
    width: int = 680,
    height: int = 420,
) -> Path:
    """Render trend series to an SVG line chart file."""
    return trends_canvas(series, title=title, width=width, height=height).save(path)


def trends_canvas(
    series: list[TrendSeries],
    *,
    title: str = "",
    width: int = 680,
    height: int = 420,
) -> SVGCanvas:
    """Build the trend line chart as an in-memory canvas.

    The run report embeds the result inline
    (:meth:`~repro.viz.svg.SVGCanvas.to_string`);
    :func:`render_trends_svg` saves it to a file.
    """
    if not series:
        raise ValueError("trends_canvas needs at least one series")
    n_frames = series[0].n_frames
    canvas = SVGCanvas(width=width, height=height)
    stacked = np.concatenate([s.values for s in series])
    axes = Axes.fit(
        canvas,
        np.arange(n_frames, dtype=np.float64),
        stacked,
        margin=(55.0, 120.0, 50.0, 30.0),
    )
    axes.draw_frame(canvas, y_label=series[0].metric)

    for s in series:
        color = color_for(s.region_id)
        points = [
            (axes.px(float(i)), axes.py(float(v)))
            for i, v in enumerate(s.values)
            if np.isfinite(v)
        ]
        if len(points) >= 2:
            canvas.polyline(points, stroke=color, stroke_width=2.0)
        for x, y in points:
            canvas.circle(x, y, 2.5, fill=color)

    # Legend on the right margin.
    legend_x = width - 112
    for index, s in enumerate(series):
        y = 40 + index * 16
        canvas.line(legend_x, y - 4, legend_x + 18, y - 4,
                    stroke=color_for(s.region_id), stroke_width=2.5)
        canvas.text(legend_x + 24, y, f"Region {s.region_id}", size=10)

    # Frame labels along x, abbreviated when crowded.
    step = max(1, n_frames // 8)
    for i in range(0, n_frames, step):
        label = series[0].frame_labels[i]
        short = label if len(label) <= 18 else label[:17] + "…"
        canvas.text(axes.px(float(i)), height - 8, short, size=8, anchor="middle")

    if title:
        canvas.text(width / 2, 16, title, anchor="middle", size=13)
    return canvas
