"""A minimal SVG canvas — no third-party plotting libraries needed.

Provides just enough vector primitives (circles, lines, polylines,
rectangles, text) plus a data-to-pixel axis mapper for the frame, trend
and timeline renderers to produce standalone ``.svg`` files.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from xml.sax.saxutils import escape

import numpy as np

__all__ = ["SVGCanvas", "Axes", "CATEGORICAL_COLORS", "color_for"]

#: A colourblind-friendlier categorical cycle (Paraver-like ordering:
#: cluster 1 gets green, 2 yellow, 3 red... matching the paper's plots
#: loosely).
CATEGORICAL_COLORS: tuple[str, ...] = (
    "#2ca02c",  # green
    "#ffbf00",  # amber
    "#d62728",  # red
    "#1f77b4",  # blue
    "#9467bd",  # purple
    "#8c564b",  # brown
    "#e377c2",  # pink
    "#17becf",  # cyan
    "#bcbd22",  # olive
    "#ff7f0e",  # orange
    "#7f7f7f",  # grey
    "#aec7e8",  # light blue
    "#98df8a",  # light green
    "#ff9896",  # light red
    "#c5b0d5",  # light purple
)


def color_for(cluster_id: int) -> str:
    """Stable colour for a cluster/region id (0 = noise grey)."""
    if cluster_id <= 0:
        return "#cccccc"
    return CATEGORICAL_COLORS[(cluster_id - 1) % len(CATEGORICAL_COLORS)]


@dataclass
class SVGCanvas:
    """Accumulates SVG elements and serialises them to a document."""

    width: int = 640
    height: int = 420
    elements: list[str] = field(default_factory=list)

    def rect(self, x: float, y: float, w: float, h: float, *, fill: str = "none",
             stroke: str = "black", stroke_width: float = 1.0) -> None:
        """Add a rectangle."""
        self.elements.append(
            f'<rect x="{x:.2f}" y="{y:.2f}" width="{w:.2f}" height="{h:.2f}" '
            f'fill="{fill}" stroke="{stroke}" stroke-width="{stroke_width}"/>'
        )

    def circle(self, cx: float, cy: float, r: float, *, fill: str = "black",
               opacity: float = 1.0) -> None:
        """Add a filled circle."""
        self.elements.append(
            f'<circle cx="{cx:.2f}" cy="{cy:.2f}" r="{r:.2f}" fill="{fill}" '
            f'fill-opacity="{opacity:.2f}"/>'
        )

    def line(self, x1: float, y1: float, x2: float, y2: float, *,
             stroke: str = "black", stroke_width: float = 1.0,
             dash: str | None = None) -> None:
        """Add a line segment."""
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self.elements.append(
            f'<line x1="{x1:.2f}" y1="{y1:.2f}" x2="{x2:.2f}" y2="{y2:.2f}" '
            f'stroke="{stroke}" stroke-width="{stroke_width}"{dash_attr}/>'
        )

    def polyline(self, points: list[tuple[float, float]], *, stroke: str = "black",
                 stroke_width: float = 1.5) -> None:
        """Add an open polyline."""
        coords = " ".join(f"{x:.2f},{y:.2f}" for x, y in points)
        self.elements.append(
            f'<polyline points="{coords}" fill="none" stroke="{stroke}" '
            f'stroke-width="{stroke_width}"/>'
        )

    def text(self, x: float, y: float, content: str, *, size: int = 12,
             anchor: str = "start", fill: str = "#222222") -> None:
        """Add a text label."""
        self.elements.append(
            f'<text x="{x:.2f}" y="{y:.2f}" font-size="{size}" '
            f'text-anchor="{anchor}" fill="{fill}" '
            f'font-family="sans-serif">{escape(content)}</text>'
        )

    def to_string(self) -> str:
        """Serialise the canvas to an SVG document."""
        body = "\n".join(self.elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">\n'
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>\n'
            f"{body}\n</svg>\n"
        )

    def save(self, path: str | Path) -> Path:
        """Write the document to *path* and return it."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_string(), encoding="utf-8")
        return path


@dataclass(frozen=True)
class Axes:
    """Maps data coordinates onto a pixel viewport (y grows upward)."""

    x0: float
    y0: float
    width: float
    height: float
    x_lo: float
    x_hi: float
    y_lo: float
    y_hi: float

    @property
    def x_span(self) -> float:
        """Data-space width (>= tiny epsilon)."""
        return max(self.x_hi - self.x_lo, 1e-300)

    @property
    def y_span(self) -> float:
        """Data-space height (>= tiny epsilon)."""
        return max(self.y_hi - self.y_lo, 1e-300)

    def px(self, x: float) -> float:
        """Data x -> pixel x."""
        return self.x0 + (x - self.x_lo) / self.x_span * self.width

    def py(self, y: float) -> float:
        """Data y -> pixel y (flipped: larger y is higher)."""
        return self.y0 + self.height - (y - self.y_lo) / self.y_span * self.height

    def draw_frame(self, canvas: SVGCanvas, *, x_label: str = "", y_label: str = "",
                   ticks: int = 5) -> None:
        """Draw the axes box, tick labels and axis titles."""
        canvas.rect(self.x0, self.y0, self.width, self.height, stroke="#444444")
        for i in range(ticks + 1):
            frac = i / ticks
            x_val = self.x_lo + frac * (self.x_hi - self.x_lo)
            y_val = self.y_lo + frac * (self.y_hi - self.y_lo)
            canvas.text(
                self.x0 + frac * self.width,
                self.y0 + self.height + 14,
                f"{x_val:.3g}",
                size=9,
                anchor="middle",
            )
            canvas.text(
                self.x0 - 4,
                self.y0 + self.height - frac * self.height + 3,
                f"{y_val:.3g}",
                size=9,
                anchor="end",
            )
        if x_label:
            canvas.text(self.x0 + self.width / 2, self.y0 + self.height + 30,
                        x_label, anchor="middle", size=11)
        if y_label:
            canvas.text(self.x0 + 4, self.y0 - 8, y_label, size=11)

    @classmethod
    def fit(
        cls,
        canvas: SVGCanvas,
        x_values: np.ndarray,
        y_values: np.ndarray,
        *,
        margin: tuple[float, float, float, float] = (50.0, 20.0, 45.0, 25.0),
        pad_fraction: float = 0.05,
    ) -> "Axes":
        """Build axes covering the data with a small padding.

        *margin* is (left, right, bottom, top) in pixels.
        """
        left, right, bottom, top = margin
        x = np.asarray(x_values, dtype=np.float64)
        y = np.asarray(y_values, dtype=np.float64)
        x = x[np.isfinite(x)]
        y = y[np.isfinite(y)]
        x_lo, x_hi = (float(x.min()), float(x.max())) if x.size else (0.0, 1.0)
        y_lo, y_hi = (float(y.min()), float(y.max())) if y.size else (0.0, 1.0)
        x_pad = (x_hi - x_lo or 1.0) * pad_fraction
        y_pad = (y_hi - y_lo or 1.0) * pad_fraction
        return cls(
            x0=left,
            y0=top,
            width=canvas.width - left - right,
            height=canvas.height - top - bottom,
            x_lo=x_lo - x_pad,
            x_hi=x_hi + x_pad,
            y_lo=y_lo - y_pad,
            y_hi=y_hi + y_pad,
        )
