"""SVG renderers for performance-space frames (paper Figures 1, 6, 8, 9).

:func:`render_frame_svg` draws one frame's scatter; the sequence
variant lays several frames out side by side on shared axes with
tracking-consistent colours — the "animation" the paper describes,
flattened into one document.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.clustering.frames import Frame
from repro.tracking.relabel import RelabeledFrame
from repro.viz.svg import Axes, SVGCanvas, color_for

__all__ = ["render_frame_svg", "render_sequence_svg", "sequence_canvas"]


def _scatter(
    canvas: SVGCanvas,
    axes: Axes,
    points: np.ndarray,
    labels: np.ndarray,
    *,
    max_points: int = 4000,
    seed: int = 0,
) -> None:
    """Draw labelled points, subsampling very large frames."""
    keep = labels != 0
    pts = points[keep]
    labs = labels[keep]
    if pts.shape[0] > max_points:
        rng = np.random.default_rng(seed)
        chosen = rng.choice(pts.shape[0], size=max_points, replace=False)
        pts = pts[chosen]
        labs = labs[chosen]
    for (x, y), lab in zip(pts.tolist(), labs.tolist()):
        canvas.circle(axes.px(x), axes.py(y), 1.8, fill=color_for(int(lab)), opacity=0.7)


def render_frame_svg(
    frame: Frame,
    path: str | Path,
    *,
    labels: np.ndarray | None = None,
    title: str | None = None,
    width: int = 640,
    height: int = 440,
) -> Path:
    """Render one frame's scatter plot to an SVG file.

    Passing *labels* overrides the frame's own cluster labels — used to
    render tracked (renamed) frames.
    """
    canvas = SVGCanvas(width=width, height=height)
    labs = frame.labels if labels is None else labels
    axes = Axes.fit(canvas, frame.plot_points[:, 0], frame.plot_points[:, 1])
    axes.draw_frame(
        canvas,
        x_label=frame.settings.x_metric,
        y_label=frame.settings.y_metric,
    )
    _scatter(canvas, axes, frame.plot_points, labs)
    canvas.text(width / 2, 14, title or frame.label, anchor="middle", size=13)
    # Legend: cluster centroids labelled by id.
    for cluster_id in sorted(set(labs.tolist()) - {0}):
        member = frame.plot_points[labs == cluster_id]
        cx, cy = member.mean(axis=0)
        canvas.text(
            axes.px(float(cx)),
            axes.py(float(cy)) - 6,
            str(cluster_id),
            anchor="middle",
            size=11,
            fill="#000000",
        )
    return canvas.save(path)


def render_sequence_svg(
    relabeled: list[RelabeledFrame],
    path: str | Path,
    *,
    panel_width: int = 420,
    panel_height: int = 380,
    columns: int = 2,
) -> Path:
    """Render a tracked frame sequence as a grid of scatter panels.

    All panels share the global region colouring, so a region keeps its
    colour across the whole sequence (the paper's Figure 6).
    """
    canvas = sequence_canvas(
        relabeled,
        panel_width=panel_width,
        panel_height=panel_height,
        columns=columns,
    )
    return canvas.save(path)


def sequence_canvas(
    relabeled: list[RelabeledFrame],
    *,
    panel_width: int = 420,
    panel_height: int = 380,
    columns: int = 2,
) -> SVGCanvas:
    """Build the frame-sequence grid as an in-memory canvas.

    The run report embeds the result inline
    (:meth:`~repro.viz.svg.SVGCanvas.to_string`);
    :func:`render_sequence_svg` saves it to a file.
    """
    if not relabeled:
        raise ValueError("sequence_canvas needs at least one frame")
    n = len(relabeled)
    columns = max(1, min(columns, n))
    rows = (n + columns - 1) // columns
    canvas = SVGCanvas(width=columns * panel_width, height=rows * panel_height)
    for index, item in enumerate(relabeled):
        col = index % columns
        row = index // columns
        x_offset = col * panel_width
        y_offset = row * panel_height
        axes = Axes(
            x0=x_offset + 50,
            y0=y_offset + 28,
            width=panel_width - 75,
            height=panel_height - 80,
            x_lo=float(item.frame.plot_points[:, 0].min()),
            x_hi=float(item.frame.plot_points[:, 0].max()),
            y_lo=float(item.frame.plot_points[:, 1].min()),
            y_hi=float(item.frame.plot_points[:, 1].max()),
        )
        axes.draw_frame(
            canvas,
            x_label=item.frame.settings.x_metric,
            y_label=item.frame.settings.y_metric,
        )
        _scatter(canvas, axes, item.frame.plot_points, item.labels, seed=index)
        canvas.text(
            x_offset + panel_width / 2,
            y_offset + 16,
            item.frame.label,
            anchor="middle",
            size=12,
        )
    return canvas
