"""Journal-backed job queue with admission control.

The queue is the server's in-memory view of job state; every mutation
is journaled *before* it becomes visible, so the on-disk journal is
always at least as new as what clients can observe and a crash between
journal append and memory update only loses work the client was never
told about.

Admission control is enforced at submit time:

* **Queue depth** — at most ``max_queue`` jobs may be waiting
  (``submitted``); beyond that submissions fail with
  :class:`~repro.errors.AdmissionError` (reason ``"queue_full"``).
* **Per-tenant cap** — at most ``tenant_cap`` jobs per tenant may be
  active (waiting or running) at once; beyond that the tenant gets
  reason ``"tenant_cap"``.

Both map to HTTP 429 at the API layer.  Rejected jobs are never
journaled — admission is the contract that accepted means durable.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.errors import AdmissionError, ServeError
from repro import obs
from repro.serve.journal import JobJournal, TERMINAL_STATES
from repro.serve.spec import JobSpec

__all__ = ["JobQueue", "JobRecord", "new_job_id"]


def new_job_id() -> str:
    """Random 12-hex job id (``os.urandom``: unique, not reproducible).

    Job ids are identities, not simulation inputs, so they are exempt
    from the determinism audit the same way ledger run ids are.
    """
    return os.urandom(6).hex()


@dataclass
class JobRecord:
    """One job as the queue tracks it."""

    job_id: str
    tenant: str
    spec: JobSpec
    state: str = "submitted"
    seq: int = 0
    attempts: int = 0
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    error_type: str = ""
    error: str = ""
    summary: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """JSON status payload served by ``GET /jobs/{id}``."""
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "state": self.state,
            "attempts": self.attempts,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error_type": self.error_type,
            "error": self.error,
            "summary": dict(self.summary),
            "spec": self.spec.to_dict(),
        }


class JobQueue:
    """Thread-safe FIFO of jobs, journaled for durability.

    ``max_queue`` bounds *waiting* jobs; ``tenant_cap`` bounds each
    tenant's *active* (waiting + running) jobs.  ``claim_next`` blocks
    workers until a job is available or the queue is closed.
    """

    def __init__(
        self,
        journal: JobJournal,
        *,
        max_queue: int = 32,
        tenant_cap: int = 4,
    ) -> None:
        if max_queue < 1:
            raise ServeError(f"max_queue must be >= 1, got {max_queue}")
        if tenant_cap < 1:
            raise ServeError(f"tenant_cap must be >= 1, got {tenant_cap}")
        self.journal = journal
        self.max_queue = int(max_queue)
        self.tenant_cap = int(tenant_cap)
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._jobs: dict[str, JobRecord] = {}
        self._seq = 0
        self._closed = False

    # -- introspection -------------------------------------------------

    def get(self, job_id: str) -> JobRecord | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self, tenant: str | None = None) -> list[JobRecord]:
        """Jobs in submission order, optionally for one tenant."""
        with self._lock:
            records = sorted(self._jobs.values(), key=lambda r: r.seq)
        if tenant is not None:
            records = [r for r in records if r.tenant == tenant]
        return records

    def depth(self) -> int:
        """Number of jobs waiting to be claimed."""
        with self._lock:
            return sum(1 for r in self._jobs.values() if r.state == "submitted")

    def counts(self) -> dict[str, int]:
        """Jobs per state (all five states, zero-filled)."""
        out = {state: 0 for state in ("submitted", "running", "done", "failed", "cancelled")}
        with self._lock:
            for record in self._jobs.values():
                out[record.state] = out.get(record.state, 0) + 1
        return out

    def _tenant_active(self, tenant: str) -> int:
        return sum(
            1
            for r in self._jobs.values()
            if r.tenant == tenant and r.state in ("submitted", "running")
        )

    # -- lifecycle -----------------------------------------------------

    def submit(self, tenant: str, spec: JobSpec) -> JobRecord:
        """Admit a job or raise :class:`AdmissionError`; journaled."""
        import time

        with self._lock:
            if self._closed:
                raise ServeError("queue is closed")
            waiting = sum(1 for r in self._jobs.values() if r.state == "submitted")
            if waiting >= self.max_queue:
                obs.count("serve.rejected_total", reason="queue_full")
                raise AdmissionError(
                    "queue_full",
                    f"queue depth {waiting} at capacity ({self.max_queue}); retry later",
                )
            if self._tenant_active(tenant) >= self.tenant_cap:
                obs.count("serve.rejected_total", reason="tenant_cap")
                raise AdmissionError(
                    "tenant_cap",
                    f"tenant {tenant!r} already has {self.tenant_cap} active job(s)",
                )
            self._seq += 1
            record = JobRecord(
                job_id=new_job_id(),
                tenant=tenant,
                spec=spec,
                seq=self._seq,
                submitted_at=time.time(),
            )
            self.journal.record(
                "submitted",
                record.job_id,
                tenant=tenant,
                spec=spec.to_dict(),
                seq=record.seq,
            )
            self._jobs[record.job_id] = record
            obs.count("serve.submitted_total", tenant=tenant)
            self._available.notify()
            return record

    def claim_next(
        self,
        timeout: float | None = None,
        *,
        gate: "Callable[[], bool] | None" = None,
    ) -> JobRecord | None:
        """Claim the oldest waiting job; ``None`` on timeout or close.

        The claimed job transitions to ``running`` (journaled with its
        attempt number) before this returns, so a crash after the claim
        leaves a ``started`` event the recovery path will re-queue.

        *gate* is re-checked under the queue lock every wake-up; while
        it returns false nothing is claimed — this is how the runner's
        ``pause()`` wins races against concurrent submissions (a
        blocked claimer woken by a submit sees the closed gate before
        it can take the job).  Call :meth:`kick` after changing gate
        state so blocked claimers re-evaluate promptly.
        """
        import time

        with self._lock:
            while True:
                if self._closed:
                    return None
                waiting = [r for r in self._jobs.values() if r.state == "submitted"]
                if gate is not None and not gate():
                    self._available.wait(timeout)
                    return None
                if waiting:
                    record = min(waiting, key=lambda r: r.seq)
                    record.state = "running"
                    record.attempts += 1
                    record.started_at = time.time()
                    self.journal.record(
                        "started",
                        record.job_id,
                        tenant=record.tenant,
                        attempt=record.attempts,
                    )
                    return record
                if not self._available.wait(timeout):
                    return None

    def _finish(self, job_id: str, state: str, **updates: Any) -> JobRecord:
        import time

        with self._lock:
            record = self._jobs.get(job_id)
            if record is None:
                raise ServeError(f"unknown job {job_id!r}")
            if record.state in TERMINAL_STATES:
                raise ServeError(
                    f"job {job_id} already terminal ({record.state})"
                )
            record.state = state
            record.finished_at = time.time()
            for key, value in updates.items():
                setattr(record, key, value)
            extra = dict(updates)
            if "summary" in extra:
                extra["summary"] = dict(extra["summary"])
            self.journal.record(state, job_id, tenant=record.tenant, **extra)
            obs.count("serve.finished_total", state=state)
            # A slot freed up: wake a waiting submitter-side check (none
            # block today, but notify keeps the invariant obvious).
            self._available.notify()
            return record

    def mark_done(self, job_id: str, summary: dict[str, Any]) -> JobRecord:
        return self._finish(job_id, "done", summary=summary)

    def mark_failed(self, job_id: str, error_type: str, error: str) -> JobRecord:
        return self._finish(job_id, "failed", error_type=error_type, error=error)

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a *waiting* job; running/terminal jobs raise."""
        import time

        with self._lock:
            record = self._jobs.get(job_id)
            if record is None:
                raise ServeError(f"unknown job {job_id!r}")
            if record.state != "submitted":
                raise ServeError(
                    f"job {job_id} is {record.state}; only waiting jobs cancel"
                )
            record.state = "cancelled"
            record.finished_at = time.time()
            self.journal.record("cancelled", job_id, tenant=record.tenant)
            obs.count("serve.finished_total", state="cancelled")
            return record

    def kick(self) -> None:
        """Wake every blocked ``claim_next`` to re-check its gate."""
        with self._lock:
            self._available.notify_all()

    def close(self) -> None:
        """Stop handing out jobs; wakes all blocked ``claim_next``."""
        with self._lock:
            self._closed = True
            self._available.notify_all()

    # -- recovery ------------------------------------------------------

    def recover(self) -> list[JobRecord]:
        """Rebuild state from the journal; re-queue interrupted jobs.

        Jobs found ``submitted`` or ``running`` (the server died before
        finishing them) go back to the waiting state with a single
        ``requeued`` journal event each — exactly once per recovery, so
        repeated restarts never multiply attempts beyond actual claims.
        Returns the re-queued records.
        """
        from repro.serve.spec import JobSpec

        requeued: list[JobRecord] = []
        replayed = self.journal.replay()
        with self._lock:
            for job_id, raw in replayed.items():
                try:
                    spec = JobSpec.from_dict(raw.get("spec", {}))
                except Exception:
                    # A journal written by a newer server may carry
                    # specs this build cannot parse; skip rather than
                    # refuse to start.
                    continue
                record = JobRecord(
                    job_id=job_id,
                    tenant=str(raw.get("tenant", "")),
                    spec=spec,
                    state=str(raw.get("state", "submitted")),
                    seq=int(raw.get("seq", 0)),
                    attempts=int(raw.get("attempts", 0)),
                    submitted_at=float(raw.get("submitted_at", 0.0)),
                    started_at=raw.get("started_at"),
                    finished_at=raw.get("finished_at"),
                    error_type=str(raw.get("error_type", "")),
                    error=str(raw.get("error", "")),
                    summary=dict(raw.get("summary", {})),
                )
                self._seq = max(self._seq, record.seq)
                if record.state in ("submitted", "running"):
                    record.state = "submitted"
                    record.started_at = None
                    self.journal.record(
                        "requeued",
                        job_id,
                        tenant=record.tenant,
                        attempts=record.attempts,
                    )
                    obs.count("serve.requeued_total")
                    requeued.append(record)
                self._jobs[job_id] = record
            if requeued:
                self._available.notify_all()
        return requeued

    def __iter__(self) -> Iterator[JobRecord]:
        return iter(self.jobs())
