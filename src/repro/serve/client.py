"""Stdlib HTTP client for the job server.

:class:`JobClient` wraps :mod:`urllib.request` with the error mapping
the server promises: 400 → :class:`~repro.errors.JobSpecError`, 429 →
:class:`~repro.errors.AdmissionError` (with the server's ``reason``),
404/409/5xx → :class:`~repro.errors.ServeError`.  The CLI's
``repro-track submit|status|result`` subcommands are thin shells over
this class, and the test suites drive it directly.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Mapping

from repro.errors import AdmissionError, JobSpecError, ServeError

__all__ = ["JobClient"]


class JobClient:
    """Talk to one :class:`~repro.serve.api.JobServer` base URL."""

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: Mapping[str, Any] | None = None,
    ) -> tuple[int, bytes]:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                return resp.status, resp.read()
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read()
        except urllib.error.URLError as exc:
            raise ServeError(
                f"cannot reach job server at {self.base_url}: {exc.reason}"
            ) from exc

    def _json(
        self,
        method: str,
        path: str,
        payload: Mapping[str, Any] | None = None,
        *,
        expect: int = 200,
    ) -> dict[str, Any]:
        status, body = self._request(method, path, payload)
        try:
            document = json.loads(body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            document = {"error": body.decode("utf-8", "replace")[:200]}
        if status == expect:
            return document
        message = document.get("error", f"HTTP {status}")
        if status == 429:
            raise AdmissionError(document.get("reason", "busy"), message)
        if status == 400:
            raise JobSpecError(message)
        raise ServeError(f"HTTP {status}: {message}")

    # -- API -----------------------------------------------------------

    def submit(self, tenant: str, spec: Mapping[str, Any]) -> dict[str, Any]:
        """POST a job; returns the initial status record."""
        return self._json(
            "POST", "/jobs", {"tenant": tenant, "spec": dict(spec)}, expect=201
        )

    def status(self, job_id: str) -> dict[str, Any]:
        return self._json("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> bytes:
        """The canonical ``result.json`` bytes of a done job."""
        status, body = self._request("GET", f"/jobs/{job_id}/result")
        if status != 200:
            self._raise_for(status, body)
        return body

    def report(self, job_id: str) -> bytes:
        """The HTML report bytes of a done job."""
        status, body = self._request("GET", f"/jobs/{job_id}/report")
        if status != 200:
            self._raise_for(status, body)
        return body

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self._json("DELETE", f"/jobs/{job_id}")

    def tenant_jobs(self, tenant: str) -> list[dict[str, Any]]:
        document = self._json("GET", f"/tenants/{tenant}/jobs")
        return list(document.get("jobs", []))

    def health(self) -> dict[str, Any]:
        return self._json("GET", "/healthz")

    def _raise_for(self, status: int, body: bytes) -> None:
        try:
            message = json.loads(body.decode("utf-8")).get("error", "")
        except (json.JSONDecodeError, UnicodeDecodeError):
            message = body.decode("utf-8", "replace")[:200]
        raise ServeError(f"HTTP {status}: {message}")

    # -- convenience ---------------------------------------------------

    def wait(
        self,
        job_id: str,
        *,
        timeout: float = 300.0,
        poll_s: float = 0.2,
    ) -> dict[str, Any]:
        """Poll until the job is terminal; returns the final status.

        Raises :class:`ServeError` if *timeout* elapses first — a job
        the server accepted but never finished is a server bug, and
        tests want it loud.
        """
        deadline = time.monotonic() + timeout
        while True:
            record = self.status(job_id)
            if record.get("state") in ("done", "failed", "cancelled"):
                return record
            if time.monotonic() >= deadline:
                raise ServeError(
                    f"job {job_id} still {record.get('state')!r} after "
                    f"{timeout:g}s"
                )
            time.sleep(poll_s)
