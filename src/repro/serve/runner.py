"""Worker-side job execution: spec in, artefacts + summary out.

:func:`run_job` is the function the server hands to
:func:`repro.parallel.run_isolated` — it executes inside a dedicated
child process, so a crash, hang or SIGKILL takes down only that job.
It rebuilds the :class:`~repro.serve.spec.JobSpec`, simulates the
requested traces, runs the batch or streaming pipeline against the
tenant's namespaced cache, and writes two artefacts atomically into the
tenant's results tree:

``result.json``
    The canonical result payload (schema ``repro.serve.result/1``):
    per-frame region labels, region memberships, the full pairwise
    relation matrices (exact float round-trip via the checkpoint
    serde) and the quality report.  Serialised with sorted keys and
    minimal separators, the payload is *byte-stable*: the same spec
    always yields the same bytes, which is what the differential suite
    compares against direct :func:`repro.quick_track` /
    :func:`repro.stream.track_windows` runs.
``report.html``
    The self-contained HTML run report (``repro.obs.report``).

The returned summary dict becomes the job's ``summary`` field in status
payloads.  The worker also exports ``REPRO_LEDGER`` pointing at the
tenant's ledger dir before touching the pipeline, so the existing
``run_record`` instrumentation inside ``quick_track``/``track_windows``
lands in per-tenant ledgers with no pipeline changes.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Mapping

from repro.serve.spec import JobSpec

__all__ = [
    "RESULT_SCHEMA",
    "build_traces",
    "execute_spec",
    "result_payload",
    "canonical_json",
    "run_job",
]

#: Schema tag of the canonical result payload.
RESULT_SCHEMA = "repro.serve.result/1"


def build_traces(spec: JobSpec) -> list:
    """Simulate one trace per (scenario, seed) pair, in order."""
    from repro.apps.registry import build_app

    return [
        build_app(spec.app, **scenario).run(seed=seed)
        for scenario, seed in zip(spec.scenarios, spec.seeds)
    ]


def execute_spec(spec: JobSpec, cache=None):
    """Run the pipeline a spec describes; returns ``(result, failures)``.

    ``result`` is always a plain
    :class:`~repro.tracking.tracker.TrackingResult`; a non-strict run's
    quarantine records come back in ``failures``.
    """
    traces = build_traces(spec)
    settings = spec.frame_settings()
    config = spec.tracker_config()
    if spec.kind == "watch":
        from repro.stream.pipeline import track_windows

        outcome = track_windows(
            traces[0],
            n_windows=spec.windows,
            window_ns=spec.window_ns,
            settings=settings,
            config=config,
            strict=spec.strict,
            cache=cache,
            jobs=spec.jobs or None,
        )
    else:
        from repro.api import quick_track

        outcome = quick_track(
            traces,
            settings=settings,
            config=config,
            jobs=spec.jobs or None,
            cache=cache,
            strict=spec.strict,
        )
    if spec.strict:
        return outcome, ()
    return outcome.value, tuple(outcome.failures)


def result_payload(spec: JobSpec, result, failures=()) -> dict[str, Any]:
    """Canonical JSON payload of a tracking result.

    Every float goes through Python's ``repr`` when serialised (the
    ``json`` module's float emitter), which round-trips binary64
    exactly — so two bit-identical results serialise to identical
    bytes, and the differential suite can ``==`` whole payloads.
    """
    from repro.obs.quality import quality_report
    from repro.stream.checkpoint import pair_relations_to_json
    from repro.tracking.relabel import relabel_frames

    quality = quality_report(result, failures=failures).to_dict()
    # Byte-stability must not depend on ambient observability state:
    # repaired_bursts reads the obs registry and is None with obs off
    # but 0 with obs on (no repairs either way).  Coalesce so direct
    # runs and server workers serialise identically.
    if quality["robust"]["repaired_bursts"] is None:
        quality["robust"]["repaired_bursts"] = 0
    return {
        "schema": RESULT_SCHEMA,
        "spec_digest": spec.digest(),
        "coverage": float(result.coverage),
        "n_frames": len(result.frames),
        "frame_labels": [frame.label for frame in result.frames],
        "regions": [
            {
                "region_id": region.region_id,
                "total_duration": float(region.total_duration),
                "members": [sorted(m) for m in region.members],
            }
            for region in result.regions
        ],
        "relabeled": [
            {
                "mapping": {str(k): v for k, v in sorted(rf.mapping.items())},
                "labels": rf.labels.tolist(),
            }
            for rf in relabel_frames(result)
        ],
        "pair_relations": [
            pair_relations_to_json(pair) for pair in result.pair_relations
        ],
        "quality": quality,
    }


def canonical_json(payload: Mapping[str, Any]) -> str:
    """Byte-stable serialisation: sorted keys, no whitespace."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _atomic_write(path: Path, text: str) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


def run_job(task: Mapping[str, Any]) -> dict[str, Any]:
    """Execute one job inside its isolated worker process.

    *task* carries ``root`` (server root), ``tenant``, ``job_id`` and
    the canonical ``spec`` dict.  Returns the summary dict the queue
    stores on the job record.
    """
    from repro.obs.ledger import LEDGER_ENV
    from repro.parallel.cache import PipelineCache
    from repro.serve.tenancy import TenantPaths

    paths = TenantPaths(task["root"], str(task["tenant"])).ensure()
    job_id = str(task["job_id"])
    # Pidfile first: fault-injection tests (and operators) can target
    # the worker of a specific job while it runs.
    paths.pid_path(job_id).write_text(str(os.getpid()), encoding="utf-8")
    # Route the pipeline's own run_record events to this tenant's ledger.
    os.environ[LEDGER_ENV] = str(paths.ledger_dir)
    try:
        spec = JobSpec.from_dict(task["spec"])
        if spec.hold_s > 0:
            time.sleep(spec.hold_s)
        cache = PipelineCache(paths.cache_dir)
        result, failures = execute_spec(spec, cache=cache)
        payload = result_payload(spec, result, failures)
        result_path = paths.result_path(job_id)
        _atomic_write(result_path, canonical_json(payload))
        from repro.obs.report import write_report

        report_path = paths.report_path(job_id)
        report_path.parent.mkdir(parents=True, exist_ok=True)
        write_report(
            report_path,
            result,
            failures=failures,
            title=f"job {job_id} · tenant {paths.tenant} · {spec.app}",
        )
        quality = payload["quality"]
        return {
            "coverage": payload["coverage"],
            "n_frames": payload["n_frames"],
            "n_regions": len(payload["regions"]),
            "n_tracked": int(quality.get("n_tracked", 0)),
            "n_failures": len(failures),
            "spec_digest": payload["spec_digest"],
            "result_path": str(result_path),
            "report_path": str(report_path),
        }
    finally:
        try:
            paths.pid_path(job_id).unlink()
        except OSError:
            pass
