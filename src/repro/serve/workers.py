"""Dispatcher pool: claims queued jobs and runs each in isolation.

A :class:`JobRunner` owns N daemon dispatcher threads.  Each thread
loops: claim the oldest waiting job from the :class:`JobQueue`, execute
it via :func:`repro.parallel.run_isolated` (a dedicated child process
per job), and record the outcome:

* normal return → ``done`` with the worker's summary dict;
* :class:`~repro.parallel.executor.RemoteTaskError` → ``failed`` with
  the original error type (``JobSpecError``, ``TrackingError``, ...);
* :class:`~repro.parallel.executor.TaskTimeout` → ``failed`` with
  ``TaskTimeout`` after the worker is killed;
* :class:`~repro.parallel.executor.WorkerDeath` (SIGKILL, OOM, crash)
  → ``failed`` with ``WorkerDeath`` and the exit code in the message.

The per-job child process is the isolation boundary the fault tests
exercise: killing one job's worker cannot corrupt the dispatcher, the
queue, or any other tenant's job.  ``pause()``/``resume()`` gate the
claim loop so tests can hold jobs in the waiting state and observe
admission control deterministically.
"""

from __future__ import annotations

import threading

from repro import obs
from repro.obs.log import get_logger
from repro.parallel.executor import (
    RemoteTaskError,
    TaskTimeout,
    WorkerDeath,
    run_isolated,
)
from repro.serve.queue import JobQueue, JobRecord
from repro.serve.runner import run_job

__all__ = ["JobRunner"]

log = get_logger(__name__)

#: How often an idle dispatcher re-checks for work / shutdown (seconds).
_POLL_S = 0.2


class JobRunner:
    """N dispatcher threads executing queued jobs one child each."""

    def __init__(
        self,
        queue: JobQueue,
        root,
        *,
        workers: int = 2,
        job_timeout: float | None = 300.0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.queue = queue
        self.root = str(root)
        self.workers = int(workers)
        self.job_timeout = job_timeout
        self._paused = threading.Event()
        self._stopping = threading.Event()
        self._threads: list[threading.Thread] = []

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "JobRunner":
        if self._threads:
            raise RuntimeError("runner already started")
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._dispatch_loop,
                name=f"repro-serve-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        obs.set_gauge("serve.workers", self.workers)
        return self

    def pause(self) -> None:
        """Stop claiming new jobs (running jobs finish normally).

        Deterministic: once this returns, no dispatcher will claim —
        the gate is re-checked under the queue lock, so even a claimer
        woken by a concurrent submit sees it closed.
        """
        self._paused.set()
        self.queue.kick()

    def resume(self) -> None:
        self._paused.clear()
        self.queue.kick()

    def stop(self, timeout: float = 10.0) -> None:
        """Close the queue and join the dispatcher threads."""
        self._stopping.set()
        self.queue.close()
        for thread in self._threads:
            thread.join(timeout)
        self._threads.clear()

    # -- the loop ------------------------------------------------------

    def _dispatch_loop(self) -> None:
        gate = lambda: not self._paused.is_set()  # noqa: E731
        while not self._stopping.is_set():
            record = self.queue.claim_next(timeout=_POLL_S, gate=gate)
            if record is None:
                continue
            self._execute(record)

    def _execute(self, record: JobRecord) -> None:
        task = {
            "root": self.root,
            "tenant": record.tenant,
            "job_id": record.job_id,
            "spec": record.spec.to_dict(),
        }
        try:
            summary = run_isolated(run_job, task, timeout=self.job_timeout)
        except RemoteTaskError as exc:
            log.warning(
                "job %s failed in worker: %s", record.job_id, exc
            )
            self.queue.mark_failed(record.job_id, exc.error_type, exc.message)
        except TaskTimeout as exc:
            log.warning("job %s timed out: %s", record.job_id, exc)
            self.queue.mark_failed(record.job_id, "TaskTimeout", str(exc))
        except WorkerDeath as exc:
            log.warning("job %s worker died: %s", record.job_id, exc)
            self.queue.mark_failed(record.job_id, "WorkerDeath", str(exc))
        except Exception as exc:  # dispatcher-side bug: never hang the job
            log.error("job %s dispatch error: %s", record.job_id, exc)
            self.queue.mark_failed(record.job_id, type(exc).__name__, str(exc))
        else:
            if not isinstance(summary, dict):
                summary = {"value": summary}
            self.queue.mark_done(record.job_id, summary)
