"""Tenant namespacing: every tenant gets an isolated slice of disk.

A tenant is identified by a short name (``[A-Za-z0-9_-]{1,64}``) and
owns a directory tree under the server root::

    <root>/tenants/<tenant>/
        cache/    per-tenant PipelineCache (content-addressed artefacts)
        ledger/   per-tenant run ledger (JSONL journal)
        results/  per-job result.json + report.html artefacts
        jobs/     per-job scratch (pidfiles, checkpoints)

Nothing a job reads or writes lives outside its tenant's tree, which is
what the isolation stress test asserts: concurrent tenants never share
cache entries, ledger events, or result files.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.errors import ServeError

__all__ = ["TenantPaths", "validate_tenant"]

_TENANT_RE = re.compile(r"^[A-Za-z0-9_-]{1,64}$")


def validate_tenant(name: str) -> str:
    """Return *name* if it is a legal tenant id, else raise ServeError."""
    if not isinstance(name, str) or not _TENANT_RE.match(name):
        raise ServeError(
            f"invalid tenant name {name!r}: must match [A-Za-z0-9_-]{{1,64}}"
        )
    return name


class TenantPaths:
    """Resolved directory layout for one tenant under a server root."""

    def __init__(self, root: str | Path, tenant: str) -> None:
        self.tenant = validate_tenant(tenant)
        self.root = Path(root)
        self.base = self.root / "tenants" / self.tenant

    @property
    def cache_dir(self) -> Path:
        return self.base / "cache"

    @property
    def ledger_dir(self) -> Path:
        return self.base / "ledger"

    @property
    def results_dir(self) -> Path:
        return self.base / "results"

    @property
    def jobs_dir(self) -> Path:
        return self.base / "jobs"

    def ensure(self) -> "TenantPaths":
        """Create the tenant tree (idempotent) and return self."""
        for path in (self.cache_dir, self.ledger_dir, self.results_dir, self.jobs_dir):
            path.mkdir(parents=True, exist_ok=True)
        return self

    def result_path(self, job_id: str) -> Path:
        return self.results_dir / job_id / "result.json"

    def report_path(self, job_id: str) -> Path:
        return self.results_dir / job_id / "report.html"

    def pid_path(self, job_id: str) -> Path:
        return self.jobs_dir / f"{job_id}.pid"
