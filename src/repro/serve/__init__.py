"""Tracking-as-a-service: a multi-tenant job server for the pipeline.

The paper's pipeline becomes a long-lived service: tenants POST job
specs (application scenarios + tracking knobs), a journal-backed queue
admits and persists them, a dispatcher pool executes each job in an
isolated child process against the tenant's namespaced cache/ledger,
and a stdlib JSON HTTP API serves status, canonical results and HTML
reports alongside the existing ``/metrics`` + ``/healthz`` endpoints.

Entry points: :class:`JobServer` (embed or ``repro-track serve``),
:class:`JobClient` (drive a running server), :class:`JobSpec` (the
validated job payload).  See ``docs/service.md`` for the API contract,
tenancy model, admission control and failure semantics.
"""

from repro.serve.api import JobServer
from repro.serve.client import JobClient
from repro.serve.journal import JOB_SCHEMA, JobJournal
from repro.serve.queue import JobQueue, JobRecord
from repro.serve.runner import RESULT_SCHEMA, canonical_json, result_payload
from repro.serve.spec import SPEC_SCHEMA, JobSpec
from repro.serve.tenancy import TenantPaths
from repro.serve.workers import JobRunner

__all__ = [
    "JobServer",
    "JobClient",
    "JobSpec",
    "JobQueue",
    "JobRecord",
    "JobJournal",
    "JobRunner",
    "TenantPaths",
    "JOB_SCHEMA",
    "SPEC_SCHEMA",
    "RESULT_SCHEMA",
    "canonical_json",
    "result_payload",
]
