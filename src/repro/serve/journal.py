"""Durable job journal: the server's source of truth across restarts.

Every job state transition is one appended JSONL event (schema
``repro.job/1``) in a :class:`~repro.obs.ledger.JsonlJournal`, so the
journal inherits the ledger's guarantees — atomic ``O_APPEND`` line
writes, segment rotation, corrupt-line tolerance.  A restarted server
replays the journal to rebuild the queue: terminal jobs stay terminal,
non-terminal jobs (``submitted`` or ``started``) are re-queued exactly
once with a ``requeued`` event recording the recovery.

Event vocabulary (the ``event`` field):

``submitted``
    Job admitted; carries tenant, job_id, the full canonical spec, and
    the submission sequence number used for FIFO ordering.
``started``
    A worker claimed the job (carries attempt number).
``done`` / ``failed`` / ``cancelled``
    Terminal transitions; ``failed`` carries ``error_type`` and
    ``error`` so post-mortems never need the worker's stderr.
``requeued``
    Recovery transition: a non-terminal job found in the journal at
    startup was put back on the queue (carries the new attempt count).
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any

from repro.obs.ledger import JsonlJournal

__all__ = ["JobJournal", "JOB_SCHEMA", "TERMINAL_STATES", "JOB_STATES"]

#: Schema tag on every job journal event.
JOB_SCHEMA = "repro.job/1"

#: Every state a job can be in.
JOB_STATES = ("submitted", "running", "done", "failed", "cancelled")

#: States from which a job never transitions again.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})


class JobJournal(JsonlJournal):
    """Append-only record of job lifecycle events."""

    schema = JOB_SCHEMA

    def __init__(self, root: str | Path, **kwargs: Any) -> None:
        super().__init__(root, **kwargs)

    def record(self, event: str, job_id: str, **extra: Any) -> None:
        """Append one lifecycle event for *job_id*."""
        payload: dict[str, Any] = {
            "event": event,
            "job_id": job_id,
            "ts": time.time(),
        }
        payload.update(extra)
        self.append(payload)

    def replay(self) -> dict[str, dict[str, Any]]:
        """Fold the journal into the latest known record per job.

        Returns ``{job_id: record}`` where each record has at least
        ``state``, ``tenant``, ``spec``, ``seq`` and ``attempts`` (the
        number of ``started`` events seen plus requeue credit).  Events
        for unknown event types are ignored, so newer servers can add
        vocabulary without breaking older readers.
        """
        jobs: dict[str, dict[str, Any]] = {}
        for event in self.iter_events():
            kind = event.get("event")
            job_id = event.get("job_id")
            if not isinstance(job_id, str) or not job_id:
                continue
            if kind == "submitted":
                jobs[job_id] = {
                    "job_id": job_id,
                    "state": "submitted",
                    "tenant": event.get("tenant", ""),
                    "spec": event.get("spec", {}),
                    "seq": int(event.get("seq", 0)),
                    "attempts": 0,
                    "submitted_at": float(event.get("ts", 0.0)),
                }
                continue
            record = jobs.get(job_id)
            if record is None or record["state"] in TERMINAL_STATES:
                # Transitions for unknown or already-terminal jobs are
                # replay noise (e.g. duplicate lines after a crash).
                continue
            if kind == "started":
                record["state"] = "running"
                record["attempts"] = int(event.get("attempt", record["attempts"] + 1))
                record["started_at"] = float(event.get("ts", 0.0))
            elif kind == "requeued":
                record["state"] = "submitted"
                record["attempts"] = int(event.get("attempts", record["attempts"]))
            elif kind == "done":
                record["state"] = "done"
                record["finished_at"] = float(event.get("ts", 0.0))
                record["summary"] = event.get("summary", {})
            elif kind == "failed":
                record["state"] = "failed"
                record["finished_at"] = float(event.get("ts", 0.0))
                record["error_type"] = event.get("error_type", "")
                record["error"] = event.get("error", "")
            elif kind == "cancelled":
                record["state"] = "cancelled"
                record["finished_at"] = float(event.get("ts", 0.0))
        return jobs
