"""Job specifications: what one tracking job asks the server to run.

A :class:`JobSpec` is the validated, canonical form of the JSON body a
tenant POSTs to ``/jobs``.  It names a bundled application generator,
the scenarios/seeds to simulate, the frame/tracker knobs, and whether
the job runs the batch pipeline (``kind="track"`` →
:func:`repro.quick_track`) or the windowed streaming pipeline
(``kind="watch"`` → :func:`repro.stream.track_windows`).

Validation is strict and front-loaded: a malformed spec is rejected at
admission time with a :class:`~repro.errors.JobSpecError` naming the
offending field, never accepted and failed later inside a worker.  The
canonical dict form (:meth:`JobSpec.to_dict`) round-trips exactly and
is what the journal persists, so a server restart re-queues byte-equal
work.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Mapping

from repro.errors import JobSpecError

__all__ = ["JobSpec", "SPEC_SCHEMA"]

#: Schema tag of the canonical spec payload.
SPEC_SCHEMA = "repro.job.spec/1"

_KINDS = ("track", "watch")

#: Hard ceilings keeping one job from monopolising a shared server.
MAX_SCENARIOS = 64

_ALLOWED_KEYS = {
    "schema",
    "kind",
    "app",
    "scenarios",
    "seeds",
    "settings",
    "config",
    "windows",
    "window_ns",
    "jobs",
    "strict",
    "hold_s",
}


def _settings_fields() -> set[str]:
    from repro.clustering.frames import FrameSettings

    return {f.name for f in fields(FrameSettings)}


def _config_fields() -> set[str]:
    from repro.tracking.tracker import TrackerConfig

    return {f.name for f in fields(TrackerConfig)}


def _check_mapping(value: Any, what: str) -> dict[str, Any]:
    if not isinstance(value, Mapping):
        raise JobSpecError(f"{what} must be a JSON object, got {type(value).__name__}")
    out = {}
    for key, item in value.items():
        if not isinstance(key, str):
            raise JobSpecError(f"{what} keys must be strings, got {key!r}")
        out[key] = item
    return out


@dataclass(frozen=True)
class JobSpec:
    """One validated tracking job.

    Attributes
    ----------
    kind:
        ``"track"`` runs the batch pipeline over one simulated trace
        per scenario; ``"watch"`` windows a single scenario's trace and
        tracks it incrementally.
    app:
        Registered application generator name (see ``repro-track info``).
    scenarios:
        Scenario kwargs per trace (``track`` needs at least two;
        ``watch`` exactly one).
    seeds:
        Simulation seed per scenario (same length as *scenarios*).
    settings / config:
        :class:`~repro.clustering.frames.FrameSettings` /
        :class:`~repro.tracking.tracker.TrackerConfig` overrides, by
        field name.
    windows / window_ns:
        Window specification for ``watch`` jobs (exactly one required).
    jobs:
        Worker count for the pipeline stages *inside* the job (the
        usual ``--jobs`` knob; results are bit-identical to serial).
    strict:
        Fail fast (default) vs quarantine-and-continue.
    hold_s:
        Seconds the worker sleeps before executing — a scheduling and
        fault-injection aid (lets tests pin down a running job); capped
        at 60.
    """

    kind: str
    app: str
    scenarios: tuple[dict[str, Any], ...]
    seeds: tuple[int, ...]
    settings: dict[str, Any] = field(default_factory=dict)
    config: dict[str, Any] = field(default_factory=dict)
    windows: int | None = None
    window_ns: float | None = None
    jobs: int = 1
    strict: bool = True
    hold_s: float = 0.0

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobSpec":
        """Validate a JSON payload into a spec; raises :class:`JobSpecError`."""
        data = _check_mapping(data, "job spec")
        unknown = set(data) - _ALLOWED_KEYS
        if unknown:
            raise JobSpecError(
                f"unknown job spec field(s): {sorted(unknown)}; "
                f"allowed: {sorted(_ALLOWED_KEYS - {'schema'})}"
            )
        schema = data.get("schema", SPEC_SCHEMA)
        if schema != SPEC_SCHEMA:
            raise JobSpecError(
                f"unsupported spec schema {schema!r} (this server speaks "
                f"{SPEC_SCHEMA!r})"
            )
        kind = data.get("kind", "track")
        if kind not in _KINDS:
            raise JobSpecError(f"kind must be one of {_KINDS}, got {kind!r}")
        app = data.get("app")
        if not isinstance(app, str) or not app:
            raise JobSpecError("app must name a registered application")
        from repro.apps.registry import APP_BUILDERS

        if app not in APP_BUILDERS:
            raise JobSpecError(
                f"unknown application {app!r}; registered: "
                f"{sorted(APP_BUILDERS)}"
            )
        raw_scenarios = data.get("scenarios")
        if not isinstance(raw_scenarios, (list, tuple)) or not raw_scenarios:
            raise JobSpecError("scenarios must be a non-empty list of objects")
        if len(raw_scenarios) > MAX_SCENARIOS:
            raise JobSpecError(
                f"too many scenarios ({len(raw_scenarios)} > {MAX_SCENARIOS})"
            )
        scenarios = tuple(
            _check_mapping(s, f"scenarios[{i}]")
            for i, s in enumerate(raw_scenarios)
        )
        raw_seeds = data.get("seeds", tuple(range(len(scenarios))))
        if not isinstance(raw_seeds, (list, tuple)):
            raise JobSpecError("seeds must be a list of integers")
        try:
            seeds = tuple(int(s) for s in raw_seeds)
        except (TypeError, ValueError):
            raise JobSpecError("seeds must be a list of integers") from None
        if len(seeds) != len(scenarios):
            raise JobSpecError(
                f"got {len(seeds)} seed(s) for {len(scenarios)} scenario(s)"
            )
        settings = _check_mapping(data.get("settings", {}), "settings")
        bad = set(settings) - _settings_fields()
        if bad:
            raise JobSpecError(
                f"unknown settings field(s): {sorted(bad)}; "
                f"allowed: {sorted(_settings_fields())}"
            )
        config = _check_mapping(data.get("config", {}), "config")
        bad = set(config) - _config_fields()
        if bad:
            raise JobSpecError(
                f"unknown config field(s): {sorted(bad)}; "
                f"allowed: {sorted(_config_fields())}"
            )
        windows = data.get("windows")
        window_ns = data.get("window_ns")
        if kind == "watch":
            if len(scenarios) != 1:
                raise JobSpecError(
                    f"watch jobs stream exactly one scenario, got "
                    f"{len(scenarios)}"
                )
            if (windows is None) == (window_ns is None):
                raise JobSpecError(
                    "watch jobs need exactly one of windows / window_ns"
                )
        else:
            if windows is not None or window_ns is not None:
                raise JobSpecError(
                    "windows/window_ns only apply to watch jobs"
                )
            if len(scenarios) < 2:
                raise JobSpecError(
                    "track jobs need at least two scenarios (frames)"
                )
        if windows is not None:
            windows = int(windows)
            if windows < 1:
                raise JobSpecError(f"windows must be >= 1, got {windows}")
        if window_ns is not None:
            window_ns = float(window_ns)
            if not window_ns > 0:
                raise JobSpecError(f"window_ns must be > 0, got {window_ns}")
        jobs = int(data.get("jobs", 1))
        if jobs < 0:
            raise JobSpecError(f"jobs must be >= 0, got {jobs}")
        hold_s = float(data.get("hold_s", 0.0))
        if not 0.0 <= hold_s <= 60.0:
            raise JobSpecError(f"hold_s must be in [0, 60], got {hold_s}")
        return cls(
            kind=kind,
            app=app,
            scenarios=scenarios,
            seeds=seeds,
            settings=settings,
            config=config,
            windows=windows,
            window_ns=window_ns,
            jobs=jobs,
            strict=bool(data.get("strict", True)),
            hold_s=hold_s,
        )

    def to_dict(self) -> dict[str, Any]:
        """Canonical JSON form; ``from_dict`` round-trips it exactly."""
        return {
            "schema": SPEC_SCHEMA,
            "kind": self.kind,
            "app": self.app,
            "scenarios": [dict(s) for s in self.scenarios],
            "seeds": list(self.seeds),
            "settings": dict(self.settings),
            "config": dict(self.config),
            "windows": self.windows,
            "window_ns": self.window_ns,
            "jobs": self.jobs,
            "strict": self.strict,
            "hold_s": self.hold_s,
        }

    def frame_settings(self):
        """Materialise the :class:`FrameSettings` this spec asks for."""
        from repro.clustering.frames import FrameSettings

        return FrameSettings(**self.settings)

    def tracker_config(self):
        """Materialise the :class:`TrackerConfig` this spec asks for."""
        from repro.tracking.tracker import TrackerConfig

        return TrackerConfig(**self.config)

    def digest(self) -> str:
        """Stable short digest of the *work product* (ledger-style).

        Execution knobs that are bit-identity-neutral by contract —
        ``jobs`` (parallel == serial), ``hold_s`` (a sleep) — are
        excluded, so a serial and a ``jobs=2`` submission of the same
        work share a digest, as their result payloads share bytes.
        """
        from repro.obs.ledger import config_digest

        payload = self.to_dict()
        for knob in ("jobs", "hold_s"):
            payload.pop(knob)
        return config_digest(payload)
