"""The job server: JSON HTTP API over queue + workers + tenancy.

:class:`JobServer` composes the pieces of :mod:`repro.serve` behind the
:class:`repro.obs.serve.MetricsServer` router hook, so one port serves
both the job API and the existing observability endpoints:

====================  =====================================================
``POST /jobs``        Submit ``{"tenant": t, "spec": {...}}`` → 201 + status
``GET /jobs/{id}``    Job status (the queue record, spec included)
``GET /jobs/{id}/result``   Canonical ``result.json`` (byte-stable)
``GET /jobs/{id}/report``   Self-contained HTML run report
``DELETE /jobs/{id}``       Cancel a *waiting* job
``GET /tenants/{t}/jobs``   All of one tenant's jobs, oldest first
``GET /metrics``      Prometheus text exposition (built-in)
``GET /healthz``      Health JSON + queue depth/state counts (built-in)
====================  =====================================================

Error mapping: malformed JSON or spec → 400 with the validation
message; unknown job → 404; cancelling a non-waiting job → 409;
admission rejection → 429 with a machine-readable ``reason``
(``queue_full`` / ``tenant_cap``) for client-side backoff.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any

from repro import obs
from repro.errors import AdmissionError, JobSpecError, ServeError
from repro.obs.serve import MetricsServer
from repro.serve.journal import JobJournal
from repro.serve.queue import JobQueue
from repro.serve.spec import JobSpec
from repro.serve.tenancy import TenantPaths, validate_tenant
from repro.serve.workers import JobRunner

__all__ = ["JobServer"]

_JSON = "application/json; charset=utf-8"
_HTML = "text/html; charset=utf-8"

_JOB_PATH = re.compile(r"^/jobs/([0-9a-f]{12})(/result|/report)?$")
_TENANT_PATH = re.compile(r"^/tenants/([A-Za-z0-9_-]{1,64})/jobs$")


def _json_reply(status: int, payload: Any) -> tuple[int, str, bytes]:
    body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
    return status, _JSON, body


def _error(status: int, message: str, **extra: Any) -> tuple[int, str, bytes]:
    payload = {"error": message}
    payload.update(extra)
    return _json_reply(status, payload)


class JobServer:
    """Multi-tenant tracking job server on one HTTP port.

    Parameters mirror the admission/execution knobs: *max_queue* bounds
    waiting jobs, *tenant_cap* bounds per-tenant active jobs, *workers*
    sizes the dispatcher pool and *job_timeout* kills runaway jobs.
    ``port=0`` binds an OS-assigned port (read ``.port``/``.url``).
    On start the journal under ``<root>/journal`` is replayed:
    interrupted jobs are re-queued exactly once, terminal jobs stay
    queryable.
    """

    def __init__(
        self,
        root: str | Path,
        *,
        port: int = 0,
        host: str = "127.0.0.1",
        workers: int = 2,
        max_queue: int = 32,
        tenant_cap: int = 4,
        job_timeout: float | None = 300.0,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        # Serving implies observability, as with `watch --serve`: the
        # /metrics endpoint reads the registry, which only fills while
        # obs is enabled.  Re-disabled on close() if enabled here.
        self._obs_enabled_here = False
        if not obs.enabled():
            obs.enable()
            self._obs_enabled_here = True
        self.journal = JobJournal(self.root / "journal")
        self.queue = JobQueue(
            self.journal, max_queue=max_queue, tenant_cap=tenant_cap
        )
        self.requeued = self.queue.recover()
        self.runner = JobRunner(
            self.queue, self.root, workers=workers, job_timeout=job_timeout
        )
        # Bind before starting workers: a port clash must fail fast and
        # leave nothing running.
        self.http = MetricsServer(
            port,
            host=host,
            health_source=self._health,
            router=self._route,
        )
        self.runner.start()
        obs.set_gauge("serve.max_queue", max_queue)
        obs.set_gauge("serve.tenant_cap", tenant_cap)

    # -- plumbing ------------------------------------------------------

    @property
    def port(self) -> int:
        return self.http.port

    @property
    def url(self) -> str:
        return self.http.url

    def _health(self) -> dict[str, Any]:
        counts = self.queue.counts()
        return {
            "serve": {
                "jobs": counts,
                "queue_depth": counts["submitted"],
                "max_queue": self.queue.max_queue,
                "tenant_cap": self.queue.tenant_cap,
                "workers": self.runner.workers,
                "requeued_on_start": len(self.requeued),
            }
        }

    def close(self) -> None:
        """Stop accepting, stop dispatching, release the port."""
        self.runner.stop()
        self.http.close()
        if self._obs_enabled_here:
            obs.disable()
            self._obs_enabled_here = False

    def __enter__(self) -> "JobServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- routing -------------------------------------------------------

    def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, str, bytes] | None:
        response = self._dispatch(method, path, body)
        if response is not None:
            obs.count("serve.http_total", method=method, status=response[0])
        return response

    def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, str, bytes] | None:
        if path == "/jobs":
            if method == "POST":
                return self._submit(body)
            return _error(405, "use POST /jobs to submit")
        match = _JOB_PATH.match(path)
        if match:
            job_id, sub = match.group(1), match.group(2)
            if method == "DELETE" and not sub:
                return self._cancel(job_id)
            if method != "GET":
                return _error(405, f"{method} not supported on {path}")
            if sub == "/result":
                return self._artifact(job_id, "result")
            if sub == "/report":
                return self._artifact(job_id, "report")
            return self._status(job_id)
        match = _TENANT_PATH.match(path)
        if match and method == "GET":
            tenant = match.group(1)
            jobs = [r.to_dict() for r in self.queue.jobs(tenant)]
            return _json_reply(200, {"tenant": tenant, "jobs": jobs})
        return None  # fall through to /metrics, /healthz, 404

    # -- handlers ------------------------------------------------------

    def _submit(self, body: bytes) -> tuple[int, str, bytes]:
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            return _error(400, f"request body is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            return _error(400, "request body must be a JSON object")
        try:
            tenant = validate_tenant(payload.get("tenant", ""))
            spec = JobSpec.from_dict(payload.get("spec", {}))
        except JobSpecError as exc:
            return _error(400, str(exc), kind="spec")
        except ServeError as exc:
            return _error(400, str(exc), kind="tenant")
        try:
            record = self.queue.submit(tenant, spec)
        except AdmissionError as exc:
            return _error(429, str(exc), reason=exc.reason)
        except ServeError as exc:
            return _error(503, str(exc))
        TenantPaths(self.root, tenant).ensure()
        return _json_reply(201, record.to_dict())

    def _status(self, job_id: str) -> tuple[int, str, bytes]:
        record = self.queue.get(job_id)
        if record is None:
            return _error(404, f"unknown job {job_id}")
        return _json_reply(200, record.to_dict())

    def _artifact(self, job_id: str, which: str) -> tuple[int, str, bytes]:
        record = self.queue.get(job_id)
        if record is None:
            return _error(404, f"unknown job {job_id}")
        if record.state != "done":
            return _error(
                409,
                f"job {job_id} is {record.state}; artefacts exist only for "
                f"done jobs",
                state=record.state,
            )
        paths = TenantPaths(self.root, record.tenant)
        path = (
            paths.result_path(job_id)
            if which == "result"
            else paths.report_path(job_id)
        )
        try:
            data = path.read_bytes()
        except OSError:
            return _error(404, f"artefact missing for job {job_id}")
        ctype = _JSON if which == "result" else _HTML
        return 200, ctype, data

    def _cancel(self, job_id: str) -> tuple[int, str, bytes]:
        record = self.queue.get(job_id)
        if record is None:
            return _error(404, f"unknown job {job_id}")
        try:
            cancelled = self.queue.cancel(job_id)
        except ServeError as exc:
            return _error(409, str(exc), state=record.state)
        return _json_reply(200, cancelled.to_dict())
