"""High-level convenience API.

These helpers wire the pipeline stages together for the common case:
traces in, tracked regions and trends out.  Power users can drive the
stages directly (:mod:`repro.clustering`, :mod:`repro.tracking`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro import obs
from repro.clustering.frames import (
    Frame,
    FrameSettings,
    make_frame,
    make_frames,
    make_frames_partial,
)
from repro.obs.log import get_logger
from repro.tracking.tracker import Tracker, TrackerConfig, TrackingResult
from repro.trace.trace import Trace

if TYPE_CHECKING:
    from repro.parallel.cache import PipelineCache
    from repro.robust.partial import PartialResult
    from repro.stream.forecast import WatchTelemetry

__all__ = [
    "cluster_trace",
    "make_frames",
    "track_frames",
    "track_stream",
    "quick_track",
]

log = get_logger(__name__)


def cluster_trace(trace: Trace, settings: FrameSettings | None = None) -> Frame:
    """Cluster one trace into a frame (capture + object recognition)."""
    return make_frame(trace, settings)


def track_frames(
    frames: list[Frame],
    config: TrackerConfig | None = None,
    *,
    jobs: int | None = None,
) -> TrackingResult:
    """Track objects across already-built frames."""
    return Tracker(frames, config).run(jobs=jobs)


def track_stream(
    frames: list[Frame],
    config: TrackerConfig | None = None,
    *,
    strict: bool = True,
    telemetry: "WatchTelemetry | None" = None,
) -> "TrackingResult | PartialResult[TrackingResult]":
    """Track already-built frames through the incremental tracker.

    A :func:`track_frames`-compatible shim over
    :class:`repro.stream.IncrementalTracker`: the frame list is known up
    front, so fixed :class:`repro.stream.SpaceBounds` are derived from
    it and the result is bit-identical to ``Tracker(frames).run()`` —
    but each (previous, new) pair is evaluated as its frame is pushed,
    never the whole sequence at once.  Non-strict runs quarantine
    failing pairs and return a :class:`~repro.robust.PartialResult`.
    Pass a :class:`repro.stream.WatchTelemetry` (optionally carrying an
    alert monitor) as *telemetry* to collect the health surface and
    per-push alerts; monitoring never changes the tracking result.
    """
    import time

    from repro.stream.incremental import IncrementalTracker, SpaceBounds

    config = config or TrackerConfig()
    bounds = SpaceBounds.from_frames(
        frames,
        reference=config.reference,
        log_extensive=config.log_extensive,
    )
    monitor = telemetry.monitor if telemetry is not None else None
    tracker = IncrementalTracker(
        config, bounds=bounds, strict=strict, monitor=monitor
    )
    if telemetry is not None:
        telemetry.n_windows = len(frames)
    for frame in frames:
        started = time.perf_counter()
        update = tracker.push(frame)
        if telemetry is not None:
            telemetry.record_update(
                update, seconds=time.perf_counter() - started
            )
    result = tracker.result()
    if strict:
        return result
    from repro.robust.partial import PartialResult

    return PartialResult(value=result, failures=tracker.failures)


def quick_track(
    traces: list[Trace],
    *,
    settings: FrameSettings | None = None,
    config: TrackerConfig | None = None,
    jobs: int | None = None,
    cache: "PipelineCache | None" = None,
    strict: bool = True,
    windows: int | None = None,
    window_ns: float | None = None,
) -> "TrackingResult | PartialResult[TrackingResult]":
    """One-call pipeline: traces -> frames -> tracking result.

    Parameters
    ----------
    traces:
        One trace per execution scenario, in sequence order.
    settings:
        Frame-construction settings shared by all scenarios.
    config:
        Tracker configuration.
    jobs:
        Worker count for the parallel stages (per-trace frame
        construction and per-pair combination); ``None`` defers to
        ``REPRO_JOBS``.  Results are bit-identical to a serial run.
    cache:
        Optional :class:`repro.parallel.cache.PipelineCache` reusing
        frame labellings across runs (see ``docs/performance.md``).
    strict:
        When true (the default), the first malformed trace or failing
        stage raises.  When false, repairably bad bursts are dropped,
        failing traces / frames / pairs are quarantined, and the result
        is a :class:`repro.robust.PartialResult` listing every
        quarantined item.  Fewer than two surviving frames raises
        :class:`~repro.errors.TrackingError` either way.
    windows / window_ns:
        When given (at most one), each trace is first sliced into
        contiguous time windows (:func:`repro.stream.slice_trace`) and
        the non-empty window sub-traces become the frame sequence —
        the paper's "each experiment (or time interval)" reading.  For
        a single trace this matches :func:`repro.stream.track_windows`
        output exactly (that entry point additionally streams updates
        and checkpoints for resume).

    Examples
    --------
    >>> from repro import apps, quick_track
    >>> traces = [apps.wrf.build(ranks=n).run(seed=0) for n in (32, 64)]
    >>> result = quick_track(traces)
    >>> result.coverage > 0
    True
    """
    from dataclasses import replace

    from repro.errors import ReproError, TrackingError
    from repro.robust.partial import ItemFailure, PartialResult
    from repro.robust.validate import validate_trace

    settings = settings or FrameSettings()
    config = config or TrackerConfig()
    if windows is not None or window_ns is not None:
        from repro.stream.pipeline import windowed_traces

        traces = windowed_traces(
            traces, n_windows=windows, window_ns=window_ns
        )
    if settings.log_y and not config.log_extensive:
        # Keep the tracking space consistent with the clustering space.
        log.info(
            "settings.log_y=True overrides config.log_extensive=False: "
            "extensive axes will be normalised in log space to match the "
            "clustering space"
        )
        config = replace(config, log_extensive=True)
    from repro.obs import ledger as obsledger

    with obsledger.run_record(
        "api.quick_track",
        n_traces=len(traces),
        config_digest=obsledger.config_digest(settings, config),
        strict=strict,
        cache_root=str(cache.root) if cache is not None else None,
    ) as ledger_rec, obs.span("api.quick_track", n_traces=len(traces)):
        if strict:
            checked = [validate_trace(trace, strict=True) for trace in traces]
            frames = make_frames(checked, settings, jobs=jobs, cache=cache)
            result = Tracker(frames, config).run(jobs=jobs)
            if ledger_rec is not None:
                ledger_rec.annotate(
                    coverage=round(result.coverage, 4),
                    n_regions=len(result.regions),
                )
            return result
        failures: list[ItemFailure] = []
        checked = []
        for trace in traces:
            try:
                checked.append(validate_trace(trace, strict=False))
            except ReproError as exc:
                failure = ItemFailure.from_exception(
                    trace.label(), "validate", exc
                )
                failures.append(failure)
                obs.count("robust.quarantined_total", stage="validate")
                log.warning("quarantined trace: %s", failure)
        frame_slots, frame_failures = make_frames_partial(
            checked, settings, jobs=jobs, cache=cache
        )
        failures.extend(frame_failures)
        frames = [frame for frame in frame_slots if frame is not None]
        if len(frames) < 2:
            detail = (
                "; ".join(str(f) for f in failures) if failures else "none"
            )
            raise TrackingError(
                f"fewer than two frames survived quarantine "
                f"({len(frames)} alive); failures: {detail}"
            )
        tracked = Tracker(frames, config).run(jobs=jobs, strict=False)
        failures.extend(tracked.failures)
        if ledger_rec is not None:
            ledger_rec.annotate(
                coverage=round(tracked.value.coverage, 4),
                n_regions=len(tracked.value.regions),
                quarantined={"items": len(failures)},
            )
        return PartialResult(value=tracked.value, failures=tuple(failures))
